//! The common output type of every look-ahead method.

use lalr_automata::{Lr0Automaton, MergedLalr, ReductionId, ReductionIndex, StateId};
use lalr_bitset::{tile_rows, BitMatrix, BitSet, BitSetRef, RowLayout, RowsMut};
use lalr_grammar::{ProdId, Terminal};

/// Ops below this count are unioned inline: splitting the row matrix
/// into bands and spawning scoped threads costs more than the unions.
const BATCH_PARALLEL_GRAIN: usize = 2048;

/// Look-ahead sets for every reduction point `(state, production)`.
///
/// All five methods in this suite (DeRemer–Pennello, SLR(1), NQLALR(1),
/// yacc-style propagation, canonical-LR(1)-merge) produce this type, so
/// conflict detection, classification and cross-validation are method
/// agnostic.
///
/// Storage is dense: a [`ReductionIndex`] enumerates the automaton's
/// reduction points once, and the sets live as rows of one [`BitMatrix`]
/// indexed by [`ReductionId`] — no per-entry allocation, no hashing on
/// lookup. A *present* bit per row distinguishes "recorded as empty"
/// (e.g. a reduction the method proved unreachable on any terminal) from
/// "never recorded", preserving the sparse semantics of the old
/// hash-keyed representation: [`LookaheadSets::la`] answers `None` for
/// reduction points the producing method never touched.
#[derive(Debug, Clone)]
pub struct LookaheadSets {
    index: ReductionIndex,
    /// One row per reduction point, `terminals` columns.
    rows: BitMatrix,
    /// Which rows have been recorded (touched / unioned / inserted).
    present: BitSet,
    terminals: usize,
}

impl LookaheadSets {
    /// Creates an empty collection over the reduction points of `index`
    /// and an alphabet of `terminals`.
    pub fn with_index(index: ReductionIndex, terminals: usize) -> LookaheadSets {
        let n = index.len();
        LookaheadSets {
            index,
            rows: BitMatrix::new(n, terminals),
            present: BitSet::new(n),
            terminals,
        }
    }

    /// Creates an empty collection covering every reduction point of an
    /// automaton.
    pub fn for_automaton(lr0: &Lr0Automaton, terminals: usize) -> LookaheadSets {
        LookaheadSets::with_index(ReductionIndex::from_lr0(lr0), terminals)
    }

    /// Creates an empty collection over an explicit list of reduction
    /// points, for callers without an automaton at hand.
    pub fn from_points(
        points: impl IntoIterator<Item = (StateId, ProdId)>,
        terminals: usize,
    ) -> LookaheadSets {
        LookaheadSets::with_index(ReductionIndex::from_points(points), terminals)
    }

    /// Size of the terminal alphabet (universe of each set).
    pub fn terminal_count(&self) -> usize {
        self.terminals
    }

    /// The [`RowLayout`] the per-reduction rows dispatch under —
    /// fixed-64 / fixed-128 for narrow alphabets, multi-word otherwise.
    pub fn layout(&self) -> RowLayout {
        self.rows.layout()
    }

    /// The dense enumeration of reduction points backing this collection.
    pub fn reduction_index(&self) -> &ReductionIndex {
        &self.index
    }

    /// The dense id of `(state, prod)` within this collection's universe
    /// of reduction points (whether or not it has been recorded).
    #[inline]
    pub fn id_of(&self, state: StateId, prod: ProdId) -> Option<ReductionId> {
        self.index.id(state, prod)
    }

    /// The look-ahead set for reducing `prod` in `state`, if recorded.
    pub fn la(&self, state: StateId, prod: ProdId) -> Option<BitSetRef<'_>> {
        let id = self.index.id(state, prod)?;
        if self.present.contains(id.index()) {
            Some(self.rows.row(id.index()))
        } else {
            None
        }
    }

    fn require(&self, state: StateId, prod: ProdId) -> ReductionId {
        self.index.id(state, prod).unwrap_or_else(|| {
            panic!(
                "({}, {}) is not a reduction point of this collection",
                state.index(),
                prod.index()
            )
        })
    }

    /// Unions `set` into the entry for `(state, prod)`, recording it if
    /// needed.
    ///
    /// # Panics
    ///
    /// Panics if `set`'s universe differs from the alphabet size, or if
    /// `(state, prod)` is not a reduction point of this collection.
    pub fn union_into(&mut self, state: StateId, prod: ProdId, set: &BitSet) {
        assert_eq!(set.len(), self.terminals, "alphabet mismatch");
        let id = self.require(state, prod);
        self.present.insert(id.index());
        self.rows.union_row_with_words(id.index(), set.as_words());
    }

    /// Allocation-free row union by dense id — the hot path of the
    /// Digraph pipeline's LA phase (`words` is typically a `Follow`
    /// matrix row).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (and, in debug builds, if `words`
    /// is not exactly an alphabet-wide row).
    #[inline]
    pub fn union_words(&mut self, id: ReductionId, words: &[usize]) {
        self.present.insert(id.index());
        self.rows.union_row_with_words(id.index(), words);
    }

    /// Bulk OR of `src` matrix rows into look-ahead rows: each
    /// `(reduction id, src row)` op performs
    /// `rows[id] |= src.row(src_row)`, and every destination id is
    /// recorded as present. Returns the number of row unions performed
    /// (after deduplication).
    ///
    /// This is the cache-aware batch lane behind the Digraph pipeline's
    /// LA phase. `ops` is sorted and deduplicated in place, then swept
    /// in destination tiles sized to L2 (see [`tile_rows`]); within a
    /// tile the ops are re-sorted by source row so a `Follow` row
    /// feeding many reductions stays hot across its whole run instead
    /// of being re-fetched once per lookback edge. With `threads > 1`
    /// and enough ops to amortize the fork, the destination matrix is
    /// split into [`RowsMut`] bands and the (disjoint) op ranges are
    /// unioned from scoped threads. OR is commutative and monotone, so
    /// every path is bit-identical to the naive per-edge loop.
    ///
    /// The lane is **adaptive** (the same discipline as the parallel
    /// Digraph's `PARALLEL_GRAIN` fallback): with one thread and a
    /// source matrix that already fits a single L2 tile, reordering
    /// cannot create locality that isn't there, so the ops run as a
    /// plain per-edge loop with no sort — on fixed-64/fixed-128 corpora
    /// the unions are a few cycles each and sorting the op list would
    /// dominate the phase. The resulting bits are identical; only the
    /// returned union count differs (duplicates are not collapsed on
    /// the direct path, matching the historical per-edge counter).
    ///
    /// # Panics
    ///
    /// Panics if `src`'s universe differs from the alphabet, or any op
    /// names an out-of-range destination or source row.
    pub fn union_rows_batch(
        &mut self,
        ops: &mut Vec<(u32, u32)>,
        src: &BitMatrix,
        threads: usize,
    ) -> u64 {
        assert_eq!(src.cols(), self.terminals, "alphabet mismatch");
        if threads <= 1 && src.rows() <= tile_rows(src.layout().words()) {
            for &(dst, s) in ops.iter() {
                self.present.insert(dst as usize);
                self.rows
                    .union_row_with_words(dst as usize, src.row_words(s as usize));
            }
            return ops.len() as u64;
        }
        ops.sort_unstable();
        ops.dedup();
        for &(dst, _) in ops.iter() {
            self.present.insert(dst as usize);
        }
        let tile = tile_rows(self.layout().words());
        if threads > 1 && ops.len() >= BATCH_PARALLEL_GRAIN {
            let bands = self.rows.partition_rows_mut(threads);
            let mut rest: &mut [(u32, u32)] = ops;
            std::thread::scope(|scope| {
                for mut band in bands {
                    let split = rest.partition_point(|&(dst, _)| {
                        (dst as usize) < band.first_row() + band.len()
                    });
                    let (mine, tail) = rest.split_at_mut(split);
                    rest = tail;
                    scope.spawn(move || batch_into_band(&mut band, mine, src, tile));
                }
            });
        } else {
            let rows = self.rows.rows();
            let (mut band, _) = self.rows.split_rows_mut(rows);
            batch_into_band(&mut band, ops, src, tile);
        }
        ops.len() as u64
    }

    /// Inserts a single terminal into the entry for `(state, prod)`.
    ///
    /// # Panics
    ///
    /// Panics if `(state, prod)` is not a reduction point of this
    /// collection.
    pub fn insert(&mut self, state: StateId, prod: ProdId, t: Terminal) {
        let id = self.require(state, prod);
        self.present.insert(id.index());
        self.rows.set(id.index(), t.index());
    }

    /// Ensures an (empty) entry is recorded for `(state, prod)`.
    ///
    /// # Panics
    ///
    /// Panics if `(state, prod)` is not a reduction point of this
    /// collection.
    pub fn touch(&mut self, state: StateId, prod: ProdId) {
        let id = self.require(state, prod);
        self.present.insert(id.index());
    }

    /// [`LookaheadSets::touch`] by dense id.
    #[inline]
    pub fn touch_id(&mut self, id: ReductionId) {
        self.present.insert(id.index());
    }

    /// Number of reduction points recorded.
    pub fn reduction_count(&self) -> usize {
        self.present.count()
    }

    /// Iterates over `((state, production), la)` entries, in dense-id
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = ((StateId, ProdId), BitSetRef<'_>)> {
        self.present
            .iter()
            .map(|i| (self.index.point(ReductionId::new(i)), self.rows.row(i)))
    }

    /// Sum of all set cardinalities (a size measure used by the evaluation).
    pub fn total_bits(&self) -> usize {
        self.present.iter().map(|i| self.rows.row_count(i)).sum()
    }

    /// `true` when every entry of `self` equals the corresponding entry of
    /// `other` and vice versa (order-independent equality is already given
    /// by `==`; this exists for readable assertion messages).
    pub fn agrees_with(&self, other: &LookaheadSets) -> bool {
        self == other
    }
}

/// One band's share of a [`LookaheadSets::union_rows_batch`]: `ops`
/// must be sorted by destination and fall inside the band. Sweeps in
/// destination tiles of `tile` rows, re-sorting each tile by source row
/// for source locality.
fn batch_into_band(band: &mut RowsMut<'_>, ops: &mut [(u32, u32)], src: &BitMatrix, tile: usize) {
    let mut start = 0;
    while start < ops.len() {
        let first_dst = ops[start].0;
        let mut end = start;
        while end < ops.len() && (ops[end].0 - first_dst) < tile as u32 {
            end += 1;
        }
        let chunk = &mut ops[start..end];
        chunk.sort_unstable_by_key(|&(dst, s)| (s, dst));
        for &(dst, s) in chunk.iter() {
            band.union_row_with_words(dst as usize, src.row_words(s as usize));
        }
        start = end;
    }
}

/// Equality compares the *recorded entries*, independent of how each
/// collection's reduction universe was enumerated — a set built over a
/// full automaton index equals one built from explicit points as long as
/// the recorded `(state, prod) → la` mappings match.
impl PartialEq for LookaheadSets {
    fn eq(&self, other: &LookaheadSets) -> bool {
        self.terminals == other.terminals
            && self.reduction_count() == other.reduction_count()
            && self
                .iter()
                .all(|((state, prod), set)| other.la(state, prod) == Some(set))
    }
}

impl Eq for LookaheadSets {}

impl From<&MergedLalr> for LookaheadSets {
    fn from(merged: &MergedLalr) -> LookaheadSets {
        let mut terminals = 0;
        for (_, set) in merged.iter() {
            terminals = terminals.max(set.len());
        }
        let mut out = LookaheadSets::from_points(merged.iter().map(|(&key, _)| key), terminals);
        for (&(state, prod), set) in merged.iter() {
            out.union_into(state, prod, set);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_lookup() {
        let key = (StateId::new(3), ProdId::new(2));
        let mut las = LookaheadSets::from_points([key], 8);
        las.insert(key.0, key.1, Terminal::new(1));
        las.union_into(key.0, key.1, &BitSet::from_indices(8, [4, 5]));
        let set = las.la(key.0, key.1).unwrap();
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![1, 4, 5]);
        assert_eq!(las.reduction_count(), 1);
        assert_eq!(las.total_bits(), 3);
        assert!(las.la(StateId::new(0), ProdId::new(0)).is_none());
    }

    #[test]
    fn touch_creates_empty_entry() {
        let key = (StateId::new(0), ProdId::new(1));
        let mut las = LookaheadSets::from_points([key], 4);
        assert!(
            las.la(key.0, key.1).is_none(),
            "untouched points are absent"
        );
        las.touch(key.0, key.1);
        assert!(las.la(key.0, key.1).unwrap().is_empty());
        assert_eq!(las.reduction_count(), 1);
    }

    #[test]
    #[should_panic(expected = "alphabet mismatch")]
    fn union_checks_universe() {
        let key = (StateId::new(0), ProdId::new(0));
        let mut las = LookaheadSets::from_points([key], 4);
        las.union_into(key.0, key.1, &BitSet::new(5));
    }

    #[test]
    #[should_panic(expected = "not a reduction point")]
    fn union_checks_reduction_point() {
        let mut las = LookaheadSets::from_points([(StateId::new(0), ProdId::new(0))], 4);
        las.union_into(StateId::new(9), ProdId::new(9), &BitSet::new(4));
    }

    #[test]
    fn equality_is_order_and_layout_independent() {
        let k0 = (StateId::new(0), ProdId::new(0));
        let k1 = (StateId::new(1), ProdId::new(1));
        let mut a = LookaheadSets::from_points([k0, k1], 4);
        // `b` enumerates an extra, never-recorded point, so its dense ids
        // differ from `a`'s — equality must not care.
        let mut b = LookaheadSets::from_points([k0, (StateId::new(0), ProdId::new(3)), k1], 4);
        a.insert(k0.0, k0.1, Terminal::new(1));
        a.insert(k1.0, k1.1, Terminal::new(2));
        b.insert(k1.0, k1.1, Terminal::new(2));
        b.insert(k0.0, k0.1, Terminal::new(1));
        assert!(a.agrees_with(&b));
        assert!(b.agrees_with(&a));
        b.touch(StateId::new(0), ProdId::new(3));
        assert!(
            !a.agrees_with(&b),
            "an extra recorded entry breaks equality"
        );
    }

    #[test]
    fn union_rows_batch_matches_per_edge_unions() {
        // Ragged multi-word alphabet; duplicated ops and shared source
        // rows exercise dedup, tiling and the source-run re-sort.
        let terminals = 130;
        let points: Vec<_> = (0..12)
            .map(|i| (StateId::new(i), ProdId::new(i % 3)))
            .collect();
        let mut follow = BitMatrix::new(5, terminals);
        for s in 0..5 {
            follow.set(s, s * 13);
            follow.set(s, 64 + s);
            follow.set(s, 129 - s);
        }
        let raw_ops: Vec<(u32, u32)> = (0..12u32)
            .flat_map(|d| (0..5u32).map(move |s| (d, (d + s) % 5)))
            .chain([(0, 0), (7, 3), (7, 3)]) // duplicates
            .collect();

        let mut naive = LookaheadSets::from_points(points.clone(), terminals);
        for &(d, s) in &raw_ops {
            naive.union_words(ReductionId::new(d as usize), follow.row_words(s as usize));
        }

        for threads in [1, 2, 4, 8] {
            let mut batched = LookaheadSets::from_points(points.clone(), terminals);
            let mut ops = raw_ops.clone();
            let unions = batched.union_rows_batch(&mut ops, &follow, threads);
            if threads == 1 {
                // Small source matrix + one thread takes the adaptive
                // direct path: no dedup, per-edge count.
                assert_eq!(unions, 63, "12×5 + 3 duplicate ops, undeduped");
            } else {
                assert_eq!(unions, 60, "12×5 distinct ops after dedup");
            }
            assert_eq!(batched, naive, "bit-identical at {threads} threads");
        }
    }

    #[test]
    fn union_rows_batch_threaded_path_is_bit_identical() {
        // Enough ops to cross BATCH_PARALLEL_GRAIN, so threads > 1
        // really takes the banded scoped-thread path.
        let terminals = 67;
        let points: Vec<_> = (0..300)
            .map(|i| (StateId::new(i), ProdId::new(i % 5)))
            .collect();
        let mut follow = BitMatrix::new(16, terminals);
        for s in 0..16 {
            follow.set(s, (s * 11) % terminals);
            follow.set(s, 66 - (s % 7));
        }
        let raw_ops: Vec<(u32, u32)> = (0..300u32)
            .flat_map(|d| (0..8u32).map(move |s| (d, (d * 7 + s) % 16)))
            .collect();
        assert!(raw_ops.len() >= super::BATCH_PARALLEL_GRAIN);

        let mut naive = LookaheadSets::from_points(points.clone(), terminals);
        for &(d, s) in &raw_ops {
            naive.union_words(ReductionId::new(d as usize), follow.row_words(s as usize));
        }
        for threads in [1, 2, 4, 8] {
            let mut batched = LookaheadSets::from_points(points.clone(), terminals);
            let mut ops = raw_ops.clone();
            batched.union_rows_batch(&mut ops, &follow, threads);
            assert_eq!(batched, naive, "bit-identical at {threads} threads");
        }
    }

    #[test]
    fn union_words_matches_union_into() {
        let key = (StateId::new(2), ProdId::new(1));
        let mut by_set = LookaheadSets::from_points([key], 70);
        let mut by_words = LookaheadSets::from_points([key], 70);
        let set = BitSet::from_indices(70, [0, 65]);
        by_set.union_into(key.0, key.1, &set);
        let id = by_words.id_of(key.0, key.1).unwrap();
        by_words.union_words(id, set.as_words());
        assert_eq!(by_set, by_words);
    }
}
