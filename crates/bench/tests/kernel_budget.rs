//! Kernel-dispatch regression guard, in the spirit of `alloc_budget.rs`.
//!
//! Layout selection is the cheapest performance decision in the whole
//! pipeline — one classification per analysis — and also the easiest to
//! regress silently: widen a universe by an off-by-one, route an
//! alphabet through the wrong constructor, and every row union quietly
//! drops from the straight-line fixed-width lane to the generic loop
//! with nothing failing. This test pins, per corpus grammar, the
//! `RowLayout` the look-ahead sets must select (derived from the
//! terminal alphabet including the reserved `$`), plus the wide-lane
//! dispatch the build is expected to report. A mismatch fails CI before
//! any benchmark would notice the slowdown.

use lalr_automata::Lr0Automaton;
use lalr_bench::methods::Method;

/// Every corpus grammar and the layout its look-ahead rows must hit.
/// Terminal counts include the reserved `$` terminal; ≤64 ⇒ `fixed-64`,
/// 65–128 ⇒ `fixed-128` (64-bit hosts).
const EXPECTED_LAYOUTS: &[(&str, &str)] = &[
    ("expr", "fixed-64"),
    ("json", "fixed-64"),
    ("lua_subset", "fixed-64"),
    ("pascal", "fixed-64"),
    ("algol60", "fixed-64"),
    ("ada_subset", "fixed-128"),
    ("tiny_java", "fixed-64"),
    ("sql_subset", "fixed-128"),
    ("c_subset", "fixed-128"),
    ("lr0_matched", "fixed-64"),
    ("slr_expr", "fixed-64"),
    ("lalr_not_slr", "fixed-64"),
    ("lr1_not_lalr", "fixed-64"),
    ("dangling_else", "fixed-64"),
    ("reads_cycle", "fixed-64"),
    ("nqlalr_witness", "fixed-64"),
];

#[test]
fn corpus_lookahead_rows_select_the_expected_layout() {
    for &(name, expected) in EXPECTED_LAYOUTS {
        let entry = lalr_corpus::by_name(name).expect("corpus entry exists");
        let grammar = entry.grammar();
        let lr0 = Lr0Automaton::build(&grammar);
        let la = Method::DeRemerPennello.run(&grammar, &lr0);
        assert_eq!(
            la.layout().name(),
            expected,
            "{name}: {} terminals must dispatch to the {expected} lane — \
             did the alphabet widen or the layout cutoffs move?",
            la.terminal_count(),
        );
        assert_eq!(
            la.layout().words(),
            if expected == "fixed-64" { 1 } else { 2 },
            "{name}: row word count disagrees with the pinned layout"
        );
    }
}

#[test]
fn every_corpus_grammar_is_pinned() {
    // A new corpus grammar must take a stance on its kernel layout;
    // otherwise this guard silently stops covering it.
    let pinned: Vec<&str> = EXPECTED_LAYOUTS.iter().map(|&(n, _)| n).collect();
    for entry in lalr_corpus::all_entries() {
        assert!(
            pinned.contains(&entry.name),
            "corpus grammar {:?} has no pinned RowLayout in kernel_budget.rs",
            entry.name
        );
    }
}

#[test]
fn wide_lane_dispatch_matches_build_features() {
    let name = lalr_core::kernel_dispatch_name();
    if lalr_core::simd_compiled() {
        // Runtime detection picks the best lane the host offers; both
        // are SIMD lanes and either is acceptable under the feature.
        assert!(
            matches!(name, "sse2" | "avx2"),
            "simd build must select a vector lane, got {name:?}"
        );
    } else {
        assert_eq!(
            name, "scalar-unrolled",
            "portable build must select the unrolled scalar lane"
        );
    }
}
