//! The [`Recorder`] trait, the free [`NullRecorder`], and the RAII
//! [`Span`] guard.

/// A sink for pipeline instrumentation.
///
/// Phase names and counter names are `&'static str` by contract: the
/// instrumented code never formats or allocates a name, which is what
/// keeps the disabled path allocation-free. Implementations must be
/// `Sync` — the parallel Digraph scheduler and the classify thread fan
/// record into one recorder from several threads at once.
pub trait Recorder: Sync {
    /// Whether this recorder retains anything at all.
    ///
    /// Instrumented code uses this to skip *computing* expensive
    /// counter inputs (e.g. tallying bitset OR operations); the span
    /// and `add` calls themselves are cheap enough to make
    /// unconditionally.
    fn is_enabled(&self) -> bool;

    /// Marks the start of the named phase on the calling thread.
    fn span_enter(&self, name: &'static str);

    /// Marks the end of the named phase on the calling thread. Calls
    /// nest: exits must mirror enters in LIFO order per thread.
    fn span_exit(&self, name: &'static str);

    /// Adds `delta` to the named monotonic counter.
    fn add(&self, counter: &'static str, delta: u64);
}

/// A recorder that drops everything.
///
/// Every method is an empty inlinable body; recording through
/// `&dyn Recorder` costs one indirect call that immediately returns.
/// The alloc-budget test in `lalr-bench` asserts the instrumented
/// pipeline performs zero additional allocations under this sink.
pub struct NullRecorder;

/// The shared null recorder, usable as `&NULL` anywhere a
/// `&dyn Recorder` is expected.
pub static NULL: NullRecorder = NullRecorder;

impl Recorder for NullRecorder {
    #[inline]
    fn is_enabled(&self) -> bool {
        false
    }

    #[inline]
    fn span_enter(&self, _name: &'static str) {}

    #[inline]
    fn span_exit(&self, _name: &'static str) {}

    #[inline]
    fn add(&self, _counter: &'static str, _delta: u64) {}
}

/// An RAII span: entered by [`span`], exited on drop.
///
/// The guard guarantees enter/exit pairing even on early returns, which
/// keeps per-thread span stacks balanced.
pub struct Span<'a> {
    rec: &'a dyn Recorder,
    name: &'static str,
}

/// Opens the named span on `rec`; the returned guard closes it when
/// dropped.
#[inline]
pub fn span<'a>(rec: &'a dyn Recorder, name: &'static str) -> Span<'a> {
    rec.span_enter(name);
    Span { rec, name }
}

impl Drop for Span<'_> {
    #[inline]
    fn drop(&mut self) {
        self.rec.span_exit(self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_inert() {
        assert!(!NULL.is_enabled());
        let rec: &dyn Recorder = &NULL;
        {
            let _outer = span(rec, "outer");
            let _inner = span(rec, "inner");
            rec.add("counter", 3);
        }
        // Nothing to observe — the point is that this compiles and runs.
    }
}
