//! Parser actions.

use std::fmt;

/// One ACTION-table entry. States and productions are raw indices so the
/// table is self-contained (and serializable) without grammar objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Action {
    /// Push the terminal and go to the state.
    Shift(u32),
    /// Reduce by the production.
    Reduce(u32),
    /// Input accepted.
    Accept,
    /// Syntax error (also what `%nonassoc` same-level conflicts resolve to).
    #[default]
    Error,
}

impl Action {
    /// `true` for [`Action::Error`].
    #[inline]
    pub fn is_error(self) -> bool {
        self == Action::Error
    }

    /// `true` for [`Action::Shift`].
    #[inline]
    pub fn is_shift(self) -> bool {
        matches!(self, Action::Shift(_))
    }

    /// `true` for [`Action::Reduce`].
    #[inline]
    pub fn is_reduce(self) -> bool {
        matches!(self, Action::Reduce(_))
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Shift(s) => write!(f, "s{s}"),
            Action::Reduce(p) => write!(f, "r{p}"),
            Action::Accept => write!(f, "acc"),
            Action::Error => write!(f, "."),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(Action::Shift(1).is_shift());
        assert!(Action::Reduce(0).is_reduce());
        assert!(Action::Error.is_error());
        assert!(!Action::Accept.is_error());
    }

    #[test]
    fn compact_rendering() {
        assert_eq!(Action::Shift(12).to_string(), "s12");
        assert_eq!(Action::Reduce(3).to_string(), "r3");
        assert_eq!(Action::Accept.to_string(), "acc");
        assert_eq!(Action::Error.to_string(), ".");
    }

    #[test]
    fn default_is_error() {
        assert_eq!(Action::default(), Action::Error);
    }
}
