//! Prometheus-style text exposition of a [`StatsSnapshot`].
//!
//! The format is the plain-text scrape format: `# HELP` / `# TYPE`
//! headers, then one `name{labels} value` sample per line. Histogram
//! buckets are cumulative (`le` is an upper bound including everything
//! below it) and end with `le="+Inf"`, followed by `_sum` and `_count`
//! samples, per the exposition convention. Everything is rendered from
//! one [`StatsSnapshot`], so a `metrics` response is internally
//! consistent: `lalr_requests_total` equals the sum over
//! `lalr_requests_by_op_total`, and each histogram's `+Inf` bucket
//! equals its `_count`.

use std::fmt::Write;

use crate::service::{StatsSnapshot, LATENCY_BOUNDS_US, OPS, PHASE_NAMES};

/// Renders the snapshot as Prometheus text exposition.
pub fn render(s: &StatsSnapshot) -> String {
    let mut out = String::new();
    let w = &mut out;

    header(w, "lalr_requests_total", "counter", "Requests handled.");
    sample(w, "lalr_requests_total", "", s.requests);
    header(
        w,
        "lalr_errors_total",
        "counter",
        "Requests answered with an error response.",
    );
    sample(w, "lalr_errors_total", "", s.errors);
    header(
        w,
        "lalr_deadline_exceeded_total",
        "counter",
        "Requests that missed their deadline.",
    );
    sample(w, "lalr_deadline_exceeded_total", "", s.deadline_exceeded);

    header(
        w,
        "lalr_requests_by_op_total",
        "counter",
        "Requests handled, by protocol op.",
    );
    for (op, &n) in OPS.iter().zip(&s.by_op) {
        sample(w, "lalr_requests_by_op_total", &format!("op=\"{op}\""), n);
    }
    header(
        w,
        "lalr_errors_by_op_total",
        "counter",
        "Error responses, by protocol op.",
    );
    for (op, &n) in OPS.iter().zip(&s.errors_by_op) {
        sample(w, "lalr_errors_by_op_total", &format!("op=\"{op}\""), n);
    }

    header(
        w,
        "lalr_request_duration_us",
        "histogram",
        "Request latency in microseconds, by protocol op.",
    );
    for (i, op) in OPS.iter().enumerate() {
        let mut cumulative = 0u64;
        for (bucket, &n) in s.latency_by_op[i].iter().enumerate() {
            cumulative += n;
            let le = match LATENCY_BOUNDS_US.get(bucket) {
                Some(bound) => bound.to_string(),
                None => "+Inf".to_string(),
            };
            sample(
                w,
                "lalr_request_duration_us_bucket",
                &format!("le=\"{le}\",op=\"{op}\""),
                cumulative,
            );
        }
        sample(
            w,
            "lalr_request_duration_us_sum",
            &format!("op=\"{op}\""),
            s.latency_sum_us[i],
        );
        sample(
            w,
            "lalr_request_duration_us_count",
            &format!("op=\"{op}\""),
            cumulative,
        );
    }

    header(
        w,
        "lalr_phase_calls_total",
        "counter",
        "Compile-pipeline phase executions.",
    );
    for (phase, &n) in PHASE_NAMES.iter().zip(&s.phase_calls) {
        sample(
            w,
            "lalr_phase_calls_total",
            &format!("phase=\"{phase}\""),
            n,
        );
    }
    header(
        w,
        "lalr_phase_ns_total",
        "counter",
        "Compile-pipeline phase wall time in nanoseconds.",
    );
    for (phase, &n) in PHASE_NAMES.iter().zip(&s.phase_ns) {
        sample(w, "lalr_phase_ns_total", &format!("phase=\"{phase}\""), n);
    }

    header(
        w,
        "lalr_parse_batches_total",
        "counter",
        "Parse batches that resolved an artifact.",
    );
    sample(w, "lalr_parse_batches_total", "", s.parse.batches);
    header(
        w,
        "lalr_parse_documents_total",
        "counter",
        "Documents parsed by the parse op, by verdict.",
    );
    for (verdict, n) in [
        ("accepted", s.parse.accepted),
        ("rejected", s.parse.rejected),
    ] {
        sample(
            w,
            "lalr_parse_documents_total",
            &format!("verdict=\"{verdict}\""),
            n,
        );
    }
    header(
        w,
        "lalr_parse_artifact_resolutions_total",
        "counter",
        "Artifact resolutions performed for parse batches (documents \
         divided by resolutions is the cache-amortization ratio).",
    );
    sample(
        w,
        "lalr_parse_artifact_resolutions_total",
        "",
        s.parse.resolutions,
    );

    if let Some(c) = &s.cache {
        header(
            w,
            "lalr_cache_events_total",
            "counter",
            "Artifact cache events, by kind.",
        );
        for (kind, n) in [
            ("hits", c.hits),
            ("misses", c.misses),
            ("coalesced", c.coalesced),
            ("evictions", c.evictions),
            ("compiles", c.compiles),
        ] {
            sample(w, "lalr_cache_events_total", &format!("kind=\"{kind}\""), n);
        }
        header(
            w,
            "lalr_store_events_total",
            "counter",
            "Persistent store-tier events, by kind (all zero unless a \
             store directory is configured).",
        );
        for (kind, n) in [
            ("hits", c.store_hits),
            ("misses", c.store_misses),
            ("writes", c.store_writes),
            ("corrupt", c.store_corrupt),
        ] {
            sample(w, "lalr_store_events_total", &format!("kind=\"{kind}\""), n);
        }
        header(
            w,
            "lalr_cache_entries",
            "gauge",
            "Committed cache entries right now.",
        );
        sample(w, "lalr_cache_entries", "", c.entries as u64);
        header(
            w,
            "lalr_cache_bytes",
            "gauge",
            "Resident accounted cache bytes right now.",
        );
        sample(w, "lalr_cache_bytes", "", c.bytes as u64);
    }

    header(
        w,
        "lalr_shed_total",
        "counter",
        "Requests shed because the pending queue was full.",
    );
    sample(w, "lalr_shed_total", "", s.shed);
    header(
        w,
        "lalr_queue_depth",
        "gauge",
        "Requests waiting in the pending queue right now.",
    );
    sample(w, "lalr_queue_depth", "", s.queue_depth as u64);
    header(
        w,
        "lalr_queue_limit",
        "gauge",
        "Configured pending-queue bound.",
    );
    sample(w, "lalr_queue_limit", "", s.queue_limit as u64);

    header(
        w,
        "lalr_health_state",
        "gauge",
        "Daemon health state (0 ok, 1 degraded, 2 draining).",
    );
    sample(w, "lalr_health_state", "", u64::from(s.health.state.code()));
    header(
        w,
        "lalr_degraded_transitions_total",
        "counter",
        "Health state transitions from ok to degraded.",
    );
    sample(
        w,
        "lalr_degraded_transitions_total",
        "",
        s.health.degraded_transitions,
    );
    header(
        w,
        "lalr_shard_restarts_total",
        "counter",
        "Event-loop shards respawned by the supervisor after a panic.",
    );
    sample(w, "lalr_shard_restarts_total", "", s.health.shard_restarts);
    header(
        w,
        "lalr_admission_rejects_total",
        "counter",
        "Connections and request lines rejected by admission control, \
         by reason.",
    );
    for (reason, n) in [
        ("conn_cap", s.health.admission.conn_cap),
        ("failpoint", s.health.admission.failpoint),
        ("peer_quota", s.health.admission.peer_quota),
        ("rate_limit", s.health.admission.rate_limit),
        ("slow_client", s.health.admission.slow_client),
    ] {
        sample(
            w,
            "lalr_admission_rejects_total",
            &format!("reason=\"{reason}\""),
            n,
        );
    }

    if !s.faults.is_empty() {
        header(
            w,
            "lalr_fault_hits_total",
            "counter",
            "Failpoint evaluations, by armed rule.",
        );
        for f in &s.faults {
            sample(
                w,
                "lalr_fault_hits_total",
                &format!("fault=\"{}\",point=\"{}\"", f.fault, f.point),
                f.hits,
            );
        }
        header(
            w,
            "lalr_fault_injected_total",
            "counter",
            "Faults actually injected, by armed rule.",
        );
        for f in &s.faults {
            sample(
                w,
                "lalr_fault_injected_total",
                &format!("fault=\"{}\",point=\"{}\"", f.fault, f.point),
                f.injected,
            );
        }
    }

    /// One shard family: name, help text, field accessor.
    type ShardFamily = (
        &'static str,
        &'static str,
        fn(&crate::ShardStatsSnapshot) -> u64,
    );
    if !s.shards.is_empty() {
        let shard_families: [ShardFamily; 6] = [
            (
                "lalr_shard_epoll_waits_total",
                "epoll_wait calls made by the shard event loop.",
                |sh| sh.epoll_waits,
            ),
            (
                "lalr_shard_events_total",
                "Readiness events dispatched by the shard event loop.",
                |sh| sh.events,
            ),
            (
                "lalr_shard_accepts_total",
                "Connections accepted or dealt to the shard.",
                |sh| sh.accepts,
            ),
            (
                "lalr_shard_inbox_items_total",
                "Completions and dealt connections drained from the shard inbox.",
                |sh| sh.inbox_items,
            ),
            (
                "lalr_shard_timer_fires_total",
                "Timer-wheel expirations handled by the shard.",
                |sh| sh.timer_fires,
            ),
            (
                "lalr_shard_connections",
                "Connections open on the shard right now.",
                |sh| sh.connections,
            ),
        ];
        for (name, help, get) in shard_families {
            let kind = if name.ends_with("_total") {
                "counter"
            } else {
                "gauge"
            };
            header(w, name, kind, help);
            for sh in &s.shards {
                sample(w, name, &format!("shard=\"{}\"", sh.shard), get(sh));
            }
        }
        header(
            w,
            "lalr_shard_epoll_wait_seconds_total",
            "counter",
            "Seconds the shard event loop spent blocked in epoll_wait.",
        );
        for sh in &s.shards {
            sample_f64(
                w,
                "lalr_shard_epoll_wait_seconds_total",
                &format!("shard=\"{}\"", sh.shard),
                sh.epoll_wait_us as f64 / 1e6,
            );
        }
    }

    if s.tracing.enabled {
        header(
            w,
            "lalr_stage_seconds_total",
            "counter",
            "Seconds spent per request stage across sampled requests \
             (flight-recorder attribution, scaled by the sampling period).",
        );
        for (stage, &ns) in lalr_obs::STAGE_NAMES.iter().zip(&s.tracing.stage_ns) {
            sample_f64(
                w,
                "lalr_stage_seconds_total",
                &format!("stage=\"{stage}\""),
                ns as f64 / 1e9,
            );
        }
        header(
            w,
            "lalr_traces_sampled_total",
            "counter",
            "Requests sampled into the flight recorder.",
        );
        sample(w, "lalr_traces_sampled_total", "", s.tracing.sampled);
    }

    header(w, "lalr_workers", "gauge", "Worker pool size.");
    sample(w, "lalr_workers", "", s.workers as u64);
    header(
        w,
        "lalr_build_info",
        "gauge",
        "Build and runtime configuration (always 1; the labels carry \
         the information).",
    );
    sample(
        w,
        "lalr_build_info",
        &format!(
            "shards=\"{}\",simd_dispatch=\"{}\",version=\"{}\"",
            s.shards.len(),
            lalr_core::kernel_dispatch_name(),
            env!("CARGO_PKG_VERSION"),
        ),
        1,
    );
    header(
        w,
        "lalr_uptime_ms",
        "gauge",
        "Milliseconds since the service started.",
    );
    sample(w, "lalr_uptime_ms", "", s.uptime_ms);
    header(
        w,
        "lalr_uptime_seconds",
        "gauge",
        "Seconds since the service started.",
    );
    sample_f64(w, "lalr_uptime_seconds", "", s.uptime_ms as f64 / 1e3);
    out
}

fn header(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn sample(out: &mut String, name: &str, labels: &str, value: u64) {
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}}} {value}");
    }
}

/// A sample with a fractional value (seconds-valued families). Renders
/// with six decimal places — microsecond resolution, deterministic
/// width.
fn sample_f64(out: &mut String, name: &str, labels: &str, value: f64) {
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {value:.6}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}}} {value:.6}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> StatsSnapshot {
        StatsSnapshot {
            requests: 10,
            errors: 2,
            deadline_exceeded: 1,
            by_op: [4, 2, 1, 1, 1, 1, 0, 0, 0],
            errors_by_op: [1, 0, 0, 1, 0, 0, 0, 0, 0],
            latency_buckets: [3, 4, 2, 1, 0, 0],
            latency_by_op: [
                [1, 2, 1, 0, 0, 0],
                [0, 1, 1, 0, 0, 0],
                [1, 0, 0, 0, 0, 0],
                [0, 1, 0, 0, 0, 0],
                [1, 0, 0, 0, 0, 0],
                [0, 0, 0, 1, 0, 0],
                [0, 0, 0, 0, 0, 0],
                [0, 0, 0, 0, 0, 0],
                [0, 0, 0, 0, 0, 0],
            ],
            latency_sum_us: [900, 700, 50, 300, 20, 15_000, 0, 0, 0],
            phase_calls: [4, 4, 4, 4, 4, 4, 4, 4],
            phase_ns: [100, 2_000, 300, 400, 500, 600, 7_000, 800],
            parse: crate::service::ParseLaneStats {
                batches: 2,
                documents: 9,
                accepted: 7,
                rejected: 2,
                resolutions: 2,
            },
            cache: None,
            workers: 2,
            uptime_ms: 1234,
            shed: 3,
            queue_depth: 1,
            queue_limit: 64,
            faults: Vec::new(),
            shards: Vec::new(),
            health: crate::service::HealthStats::default(),
            tracing: crate::service::TracingStats::default(),
        }
    }

    #[test]
    fn every_sample_line_is_well_formed_and_typed() {
        let mut s = snapshot();
        s.shards = vec![crate::ShardStatsSnapshot {
            shard: 0,
            epoll_waits: 12,
            epoll_wait_us: 3_400,
            events: 30,
            accepts: 2,
            inbox_items: 5,
            timer_fires: 1,
            connections: 2,
        }];
        s.tracing = crate::service::TracingStats {
            enabled: true,
            capacity: 256,
            sample_every: 1,
            sampled: 9,
            stage_ns: [1_000, 2_000, 3_000, 0, 500],
        };
        let text = render(&s);
        let mut typed = std::collections::HashSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                typed.insert(rest.split(' ').next().unwrap().to_string());
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let (name_labels, value) = line.rsplit_once(' ').expect("sample has a value");
            // Counters are integers; seconds-valued families are floats.
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
            let name = name_labels.split('{').next().unwrap();
            let base = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .unwrap_or(name);
            assert!(
                typed.contains(base) || typed.contains(name),
                "sample {name} has no TYPE header"
            );
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let text = render(&snapshot());
        let compile: Vec<u64> = text
            .lines()
            .filter(|l| {
                l.starts_with("lalr_request_duration_us_bucket") && l.contains("op=\"compile\"")
            })
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert_eq!(compile.len(), LATENCY_BOUNDS_US.len() + 1);
        assert!(compile.windows(2).all(|w| w[0] <= w[1]), "{compile:?}");
        assert_eq!(*compile.last().unwrap(), 4, "+Inf bucket counts all");
        let count_line = text
            .lines()
            .find(|l| l.starts_with("lalr_request_duration_us_count") && l.contains("compile"))
            .unwrap();
        assert_eq!(count_line.rsplit_once(' ').unwrap().1, "4");
    }

    #[test]
    fn shed_queue_and_fault_series_render() {
        let mut s = snapshot();
        let text = render(&s);
        assert!(text.contains("lalr_shed_total 3"), "{text}");
        assert!(text.contains("lalr_queue_depth 1"), "{text}");
        assert!(text.contains("lalr_queue_limit 64"), "{text}");
        // No chaos plan → no fault series at all.
        assert!(!text.contains("lalr_fault_"), "{text}");

        s.faults = vec![lalr_chaos::FaultPointStats {
            point: "daemon.read".to_string(),
            fault: "delay-2".to_string(),
            hits: 40,
            injected: 13,
            expected: 13,
        }];
        let text = render(&s);
        assert!(
            text.contains("lalr_fault_hits_total{fault=\"delay-2\",point=\"daemon.read\"} 40"),
            "{text}"
        );
        assert!(
            text.contains("lalr_fault_injected_total{fault=\"delay-2\",point=\"daemon.read\"} 13"),
            "{text}"
        );
    }

    #[test]
    fn parse_lane_series_render_and_agree() {
        let s = snapshot();
        let text = render(&s);
        assert!(text.contains("lalr_parse_batches_total 2"), "{text}");
        assert!(
            text.contains("lalr_parse_documents_total{verdict=\"accepted\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("lalr_parse_documents_total{verdict=\"rejected\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("lalr_parse_artifact_resolutions_total 2"),
            "{text}"
        );
        // Accepted + rejected covers every document.
        assert_eq!(s.parse.accepted + s.parse.rejected, s.parse.documents);
    }

    #[test]
    fn health_and_admission_families_always_render() {
        let mut s = snapshot();
        let text = render(&s);
        assert!(text.contains("lalr_health_state 0"), "{text}");
        assert!(text.contains("lalr_degraded_transitions_total 0"), "{text}");
        assert!(text.contains("lalr_shard_restarts_total 0"), "{text}");
        assert!(
            text.contains("lalr_admission_rejects_total{reason=\"peer_quota\"} 0"),
            "{text}"
        );

        s.health = crate::service::HealthStats {
            state: crate::service::HealthState::Degraded,
            degraded_transitions: 2,
            shard_restarts: 1,
            admission: crate::service::AdmissionRejects {
                conn_cap: 4,
                peer_quota: 3,
                rate_limit: 7,
                slow_client: 1,
                failpoint: 2,
            },
            max_connections_per_peer: 8,
            rate_limit_per_sec: 100,
        };
        let text = render(&s);
        assert!(text.contains("lalr_health_state 1"), "{text}");
        assert!(text.contains("lalr_degraded_transitions_total 2"), "{text}");
        assert!(text.contains("lalr_shard_restarts_total 1"), "{text}");
        assert!(
            text.contains("lalr_admission_rejects_total{reason=\"rate_limit\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("lalr_admission_rejects_total{reason=\"slow_client\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn totals_agree_with_per_op_breakdowns() {
        let s = snapshot();
        let text = render(&s);
        let sum: u64 = text
            .lines()
            .filter(|l| l.starts_with("lalr_requests_by_op_total{"))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
            .sum();
        assert_eq!(sum, s.requests);
    }

    #[test]
    fn build_info_and_uptime_seconds_always_render() {
        let text = render(&snapshot());
        let info = text
            .lines()
            .find(|l| l.starts_with("lalr_build_info{"))
            .expect("build info sample");
        assert!(info.contains("version=\""), "{info}");
        assert!(info.contains("simd_dispatch=\""), "{info}");
        assert!(info.contains("shards=\"0\""), "{info}");
        assert!(info.ends_with("} 1"), "{info}");
        assert!(text.contains("lalr_uptime_ms 1234"), "{text}");
        assert!(text.contains("lalr_uptime_seconds 1.234000"), "{text}");
    }

    #[test]
    fn shard_and_stage_families_render_only_when_present() {
        let mut s = snapshot();
        let text = render(&s);
        // Per-shard families need shards; `lalr_shard_restarts_total` is
        // daemon-wide and always renders.
        assert!(!text.contains("lalr_shard_epoll"), "{text}");
        assert!(!text.contains("lalr_shard_connections"), "{text}");
        assert!(!text.contains("lalr_shard_accepts_total"), "{text}");
        assert!(!text.contains("lalr_stage_seconds_total"), "{text}");

        s.shards = vec![
            crate::ShardStatsSnapshot {
                shard: 0,
                epoll_waits: 12,
                epoll_wait_us: 3_400,
                events: 30,
                accepts: 2,
                inbox_items: 5,
                timer_fires: 1,
                connections: 2,
            },
            crate::ShardStatsSnapshot {
                shard: 1,
                epoll_waits: 8,
                epoll_wait_us: 1_000,
                events: 10,
                accepts: 1,
                inbox_items: 3,
                timer_fires: 0,
                connections: 1,
            },
        ];
        s.tracing = crate::service::TracingStats {
            enabled: true,
            capacity: 256,
            sample_every: 4,
            sampled: 9,
            stage_ns: [1_000_000, 0, 2_500_000_000, 0, 0],
        };
        let text = render(&s);
        assert!(
            text.contains("lalr_shard_epoll_waits_total{shard=\"0\"} 12"),
            "{text}"
        );
        assert!(
            text.contains("lalr_shard_accepts_total{shard=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("lalr_shard_connections{shard=\"0\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("lalr_shard_epoll_wait_seconds_total{shard=\"0\"} 0.003400"),
            "{text}"
        );
        assert!(
            text.contains("lalr_stage_seconds_total{stage=\"queue\"} 0.001000"),
            "{text}"
        );
        assert!(
            text.contains("lalr_stage_seconds_total{stage=\"compile\"} 2.500000"),
            "{text}"
        );
        assert!(text.contains("lalr_traces_sampled_total 9"), "{text}");
        assert!(text.contains("shards=\"2\""), "{text}");
    }
}
