//! Tokens.

use std::fmt;

/// One lexical token: a terminal index into the parse table's alphabet,
/// the matched text, and its byte offset in the input.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token {
    terminal: u32,
    text: String,
    offset: usize,
}

impl Token {
    /// Creates a token.
    pub fn new(terminal: u32, text: impl Into<String>, offset: usize) -> Token {
        Token {
            terminal,
            text: text.into(),
            offset,
        }
    }

    /// The terminal index.
    #[inline]
    pub fn terminal(&self) -> u32 {
        self.terminal
    }

    /// The matched text.
    #[inline]
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Byte offset of the first character in the input.
    #[inline]
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}@{}", self.text, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_display() {
        let t = Token::new(3, "while", 10);
        assert_eq!(t.terminal(), 3);
        assert_eq!(t.text(), "while");
        assert_eq!(t.offset(), 10);
        assert_eq!(t.to_string(), "\"while\"@10");
    }
}
