//! Differential language test: for a grammar on which a method is
//! *adequate* (no conflicts), the parse table built from that method's
//! look-ahead sets accepts exactly the grammar's language. So tables from
//! DP, propagation, LR(1)-merge, SLR and NQLALR must agree on every input
//! — positive samples from the sentence generator and mutated near-misses.

use lalr::automata::merge_lr1;
use lalr::core::{find_conflicts, propagation_lookaheads, NqlalrAnalysis};
use lalr::prelude::*;
use lalr::runtime::Token;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tokens(sentence: &[lalr::grammar::Terminal], g: &Grammar) -> Vec<Token> {
    sentence
        .iter()
        .enumerate()
        .map(|(i, &t)| Token::new(t.index() as u32, g.terminal_name(t), i))
        .collect()
}

/// Random single-token mutations: delete, duplicate, or substitute.
fn mutate(
    sentence: &[lalr::grammar::Terminal],
    g: &Grammar,
    rng: &mut StdRng,
) -> Vec<lalr::grammar::Terminal> {
    let mut s = sentence.to_vec();
    let n_terms = g.terminal_count();
    match rng.gen_range(0..3) {
        0 if !s.is_empty() => {
            let i = rng.gen_range(0..s.len());
            s.remove(i);
        }
        1 if !s.is_empty() => {
            let i = rng.gen_range(0..s.len());
            let t = s[i];
            s.insert(i, t);
        }
        _ => {
            // Substitute (or append when empty) a random non-EOF terminal.
            let t = lalr::grammar::Terminal::new(rng.gen_range(1..n_terms.max(2)));
            if s.is_empty() {
                s.push(t);
            } else {
                let i = rng.gen_range(0..s.len());
                s[i] = t;
            }
        }
    }
    s
}

#[test]
fn adequate_methods_accept_identical_languages() {
    for name in [
        "expr",
        "json",
        "lalr_not_slr",
        "nqlalr_witness",
        "sql_subset",
    ] {
        let g = lalr::corpus::by_name(name).expect("corpus entry").grammar();
        let lr0 = Lr0Automaton::build(&g);

        // Gather every adequate method's table.
        let candidates: Vec<(&str, LookaheadSets)> = vec![
            ("DP", LalrAnalysis::compute(&g, &lr0).into_lookaheads()),
            ("prop", propagation_lookaheads(&g, &lr0)),
            (
                "merge",
                LookaheadSets::from(&merge_lr1(&g, &Lr1Automaton::build(&g), &lr0)),
            ),
            ("slr", slr_lookaheads(&g, &lr0)),
            (
                "nqlalr",
                NqlalrAnalysis::compute(&g, &lr0).into_lookaheads(),
            ),
        ];
        let tables: Vec<(&str, ParseTable)> = candidates
            .into_iter()
            .filter(|(_, la)| find_conflicts(&g, &lr0, la).is_empty())
            .map(|(m, la)| (m, build_table(&g, &lr0, &la, TableOptions::default())))
            .collect();
        assert!(tables.len() >= 3, "{name}: DP, prop, merge at least");

        let mut rng = StdRng::seed_from_u64(7);
        let sentences = lalr::corpus::sentences::generate_many(&g, 11, 25, 30);
        for sentence in &sentences {
            // Positive sample plus three mutations of it.
            let mut inputs = vec![sentence.clone()];
            for _ in 0..3 {
                inputs.push(mutate(sentence, &g, &mut rng));
            }
            for input in inputs {
                let verdicts: Vec<(&str, bool)> = tables
                    .iter()
                    .map(|(m, t)| (*m, Parser::new(t).parse(tokens(&input, &g)).is_ok()))
                    .collect();
                let first = verdicts[0].1;
                assert!(
                    verdicts.iter().all(|&(_, v)| v == first),
                    "{name}: methods disagree on {:?}: {verdicts:?}",
                    input
                        .iter()
                        .map(|&t| g.terminal_name(t))
                        .collect::<Vec<_>>()
                );
            }
        }
    }
}

#[test]
fn dp_table_equals_propagation_and_merge_tables_exactly() {
    // Stronger than language equality: same LA sets means byte-identical
    // tables for the exact methods.
    for name in [
        "expr",
        "json",
        "pascal",
        "lua_subset",
        "ada_subset",
        "sql_subset",
    ] {
        let g = lalr::corpus::by_name(name).expect("corpus entry").grammar();
        let lr0 = Lr0Automaton::build(&g);
        let dp = build_table(
            &g,
            &lr0,
            &LalrAnalysis::compute(&g, &lr0).into_lookaheads(),
            TableOptions::default(),
        );
        let prop = build_table(
            &g,
            &lr0,
            &propagation_lookaheads(&g, &lr0),
            TableOptions::default(),
        );
        assert_eq!(dp, prop, "{name}: DP and propagation tables identical");
    }
}
