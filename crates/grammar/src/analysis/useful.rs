//! Productivity and reachability (useless-symbol detection).

use lalr_bitset::BitSet;

use crate::grammar::Grammar;
use crate::symbol::{NonTerminal, Symbol, Terminal};

/// Nonterminals that derive at least one terminal string.
///
/// # Examples
///
/// ```
/// use lalr_grammar::{analysis::productive_nonterminals, parse_grammar};
///
/// let g = parse_grammar("s : \"a\" | b ; b : b \"x\" ;")?;
/// let prod = productive_nonterminals(&g);
/// assert!(prod.contains(g.start().index()));
/// assert!(!prod.contains(g.nonterminal_by_name("b").unwrap().index()));
/// # Ok::<(), lalr_grammar::GrammarError>(())
/// ```
pub fn productive_nonterminals(grammar: &Grammar) -> BitSet {
    let mut productive = BitSet::new(grammar.nonterminal_count());
    let mut changed = true;
    while changed {
        changed = false;
        for p in grammar.productions() {
            if productive.contains(p.lhs().index()) {
                continue;
            }
            let ok = p.rhs().iter().all(|&s| match s {
                Symbol::Terminal(_) => true,
                Symbol::NonTerminal(n) => productive.contains(n.index()),
            });
            if ok {
                productive.insert(p.lhs().index());
                changed = true;
            }
        }
    }
    productive
}

/// Symbols reachable from the augmented start symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reachability {
    terminals: BitSet,
    nonterminals: BitSet,
}

impl Reachability {
    /// `true` when `t` occurs in some sentential form.
    pub fn terminal(&self, t: Terminal) -> bool {
        self.terminals.contains(t.index())
    }

    /// `true` when `nt` occurs in some sentential form.
    pub fn nonterminal(&self, nt: NonTerminal) -> bool {
        self.nonterminals.contains(nt.index())
    }

    /// The reachable terminal indices.
    pub fn terminal_set(&self) -> &BitSet {
        &self.terminals
    }

    /// The reachable nonterminal indices.
    pub fn nonterminal_set(&self) -> &BitSet {
        &self.nonterminals
    }
}

/// Computes the symbols reachable from `<start>` by production expansion.
///
/// The reserved `$` is always counted reachable (it follows every input).
pub fn reachable_symbols(grammar: &Grammar) -> Reachability {
    let mut terminals = BitSet::new(grammar.terminal_count());
    let mut nonterminals = BitSet::new(grammar.nonterminal_count());
    terminals.insert(Terminal::EOF.index());
    let mut work = vec![NonTerminal::AUGMENTED_START];
    nonterminals.insert(NonTerminal::AUGMENTED_START.index());
    while let Some(nt) = work.pop() {
        for &pid in grammar.productions_of(nt) {
            for &sym in grammar.production(pid).rhs() {
                match sym {
                    Symbol::Terminal(t) => {
                        terminals.insert(t.index());
                    }
                    Symbol::NonTerminal(n) => {
                        if nonterminals.insert(n.index()) {
                            work.push(n);
                        }
                    }
                }
            }
        }
    }
    Reachability {
        terminals,
        nonterminals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_grammar;

    #[test]
    fn everything_useful_in_clean_grammar() {
        let g = parse_grammar("s : \"a\" s | \"b\" ;").unwrap();
        let p = productive_nonterminals(&g);
        assert_eq!(p.count(), g.nonterminal_count());
        let r = reachable_symbols(&g);
        assert_eq!(r.terminal_set().count(), g.terminal_count());
        assert_eq!(r.nonterminal_set().count(), g.nonterminal_count());
    }

    #[test]
    fn unproductive_detected() {
        let g = parse_grammar("s : \"a\" | u ; u : u \"x\" ;").unwrap();
        let p = productive_nonterminals(&g);
        let u = g.nonterminal_by_name("u").unwrap();
        assert!(!p.contains(u.index()));
        assert!(p.contains(g.start().index()));
    }

    #[test]
    fn unreachable_detected() {
        let g = parse_grammar("s : \"a\" ; dead : \"b\" ;").unwrap();
        let r = reachable_symbols(&g);
        let dead = g.nonterminal_by_name("dead").unwrap();
        let b = g.terminal_by_name("b").unwrap();
        assert!(!r.nonterminal(dead));
        assert!(!r.terminal(b));
        assert!(r.terminal(g.terminal_by_name("a").unwrap()));
    }

    #[test]
    fn eof_always_reachable() {
        let g = parse_grammar("s : \"a\" ;").unwrap();
        assert!(reachable_symbols(&g).terminal(Terminal::EOF));
    }

    #[test]
    fn nullable_only_nonterminal_is_productive() {
        let g = parse_grammar("s : a ; a : ;").unwrap();
        let p = productive_nonterminals(&g);
        assert_eq!(p.count(), g.nonterminal_count());
    }
}
