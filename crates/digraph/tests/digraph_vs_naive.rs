//! Property tests: the Digraph algorithm must agree with the naive fixpoint
//! reference on random graphs, and with reachability semantics.

use lalr_bitset::BitMatrix;
use lalr_digraph::{
    digraph, digraph_levels, digraph_with_schedule, naive_closure, tarjan_scc, Graph, LevelSchedule,
};
use proptest::prelude::*;

const COLS: usize = 64;

#[derive(Debug, Clone)]
struct Case {
    n: usize,
    edges: Vec<(usize, usize)>,
    init: Vec<(usize, usize)>,
}

fn case() -> impl Strategy<Value = Case> {
    (1usize..24).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n, 0..n), 0..80);
        let init = prop::collection::vec((0..n, 0..COLS), 0..40);
        (Just(n), edges, init).prop_map(|(n, edges, init)| Case { n, edges, init })
    })
}

fn setup(c: &Case) -> (Graph, BitMatrix) {
    let g = Graph::from_edges(c.n, c.edges.iter().copied());
    let mut m = BitMatrix::new(c.n, COLS);
    for &(r, col) in &c.init {
        m.set(r, col);
    }
    (g, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn digraph_equals_naive_closure(c in case()) {
        let (g, init) = setup(&c);
        let mut fast = init.clone();
        let mut slow = init;
        digraph(&g, &mut fast);
        naive_closure(&g, &mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn digraph_result_is_reachability_union(c in case()) {
        // F(x) must equal the union of F'(y) over all y reachable from x
        // (including x itself), computed here by plain BFS.
        let (g, init) = setup(&c);
        let mut fast = init.clone();
        digraph(&g, &mut fast);
        for x in 0..c.n {
            let mut seen = vec![false; c.n];
            let mut queue = vec![x];
            seen[x] = true;
            let mut want = lalr_bitset::BitSet::new(COLS);
            while let Some(u) = queue.pop() {
                for col in init.iter_row(u) {
                    want.insert(col);
                }
                for &v in g.successors(u) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        queue.push(v as usize);
                    }
                }
            }
            prop_assert_eq!(fast.row_to_bitset(x), want, "node {}", x);
        }
    }

    #[test]
    fn scc_members_get_identical_sets(c in case()) {
        let (g, init) = setup(&c);
        let mut fast = init;
        digraph(&g, &mut fast);
        let scc = tarjan_scc(&g);
        for a in 0..c.n {
            for b in 0..c.n {
                if scc.same_component(a, b) {
                    prop_assert_eq!(fast.row_to_bitset(a), fast.row_to_bitset(b));
                }
            }
        }
    }

    #[test]
    fn digraph_is_monotone_in_init(c in case(), extra in prop::collection::vec((0usize..24, 0..COLS), 0..10)) {
        let (g, init) = setup(&c);
        let mut bigger = init.clone();
        for &(r, col) in &extra {
            if r < c.n {
                bigger.set(r, col);
            }
        }
        let mut f_small = init;
        let mut f_big = bigger;
        digraph(&g, &mut f_small);
        digraph(&g, &mut f_big);
        for x in 0..c.n {
            prop_assert!(f_small.row_to_bitset(x).is_subset(&f_big.row_to_bitset(x)));
        }
    }

    #[test]
    fn scc_count_plus_sizes_consistent(c in case()) {
        let (g, _) = setup(&c);
        let scc = tarjan_scc(&g);
        let sizes = scc.sizes();
        prop_assert_eq!(sizes.len(), scc.count());
        prop_assert_eq!(sizes.iter().sum::<usize>(), c.n);
        prop_assert!(sizes.iter().all(|&s| s >= 1));
    }

    #[test]
    fn three_traversals_agree_on_random_relations(c in case()) {
        // naive fixpoint vs Tarjan-style DFS vs level-scheduled parallel:
        // identical closures AND identical cycle diagnostics, on graphs
        // that include cyclic ones (edges are unrestricted, so self-loops
        // and multi-node cycles occur routinely).
        let (g, init) = setup(&c);
        let mut slow = init.clone();
        naive_closure(&g, &mut slow);
        let mut dfs = init.clone();
        let dfs_stats = digraph(&g, &mut dfs);
        prop_assert_eq!(&dfs, &slow, "DFS closure != naive closure");
        let schedule = LevelSchedule::of(&g);
        for threads in [1usize, 2, 4, 8] {
            let mut level = init.clone();
            let level_stats = digraph_levels(&g, &mut level, threads);
            prop_assert_eq!(&level, &slow, "level closure != naive at {} threads", threads);
            prop_assert_eq!(&level_stats, &dfs_stats, "stats diverge at {} threads", threads);
            prop_assert_eq!(
                level_stats.has_cycle(), dfs_stats.has_cycle(),
                "cycle flags disagree at {} threads", threads
            );
            // digraph_levels adapts (small graphs run sequentially), so
            // also force the threaded path through the schedule.
            let mut forced = init.clone();
            let forced_stats = digraph_with_schedule(&g, &mut forced, &schedule, threads);
            prop_assert_eq!(&forced, &slow, "forced closure != naive at {} threads", threads);
            prop_assert_eq!(&forced_stats, &dfs_stats, "forced stats diverge at {} threads", threads);
        }
    }

    #[test]
    fn level_schedule_is_a_valid_topological_leveling(c in case()) {
        let (g, _) = setup(&c);
        let s = LevelSchedule::of(&g);
        // Every component appears in exactly one level.
        let mut level_of = vec![usize::MAX; s.scc().count()];
        for (l, comps) in s.levels().iter().enumerate() {
            for &comp in comps {
                prop_assert_eq!(level_of[comp as usize], usize::MAX, "component listed twice");
                level_of[comp as usize] = l;
            }
        }
        prop_assert!(level_of.iter().all(|&l| l != usize::MAX), "component missing a level");
        // Inter-component edges strictly descend levels (the frontier
        // independence property the parallel traversal relies on).
        for (u, v) in g.edges() {
            let (cu, cv) = (s.scc().component(u), s.scc().component(v));
            if cu != cv {
                prop_assert!(level_of[cu] > level_of[cv], "edge {}->{} does not descend", u, v);
            }
        }
        // The schedule's derived stats match a real traversal's.
        let mut m = BitMatrix::new(c.n, COLS);
        prop_assert_eq!(s.stats(&g), digraph(&g, &mut m));
    }
}
