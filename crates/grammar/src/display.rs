//! Human-readable rendering of grammars.

use std::fmt;

use crate::grammar::Grammar;
use crate::production::ProdId;

/// Quotes a symbol name when it is not a plain identifier, so that
/// `Display` output re-parses with [`crate::parse_grammar`].
fn quoted(name: &str) -> String {
    let ident = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_alphanumeric() || matches!(c, '_' | '\'' | '.'));
    if ident {
        name.to_string()
    } else {
        format!("\"{name}\"")
    }
}

impl Grammar {
    /// Renders one production as `lhs -> x y z` (ε shown as `%empty`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn production_to_string(&self, id: ProdId) -> String {
        let p = self.production(id);
        let rhs = if p.is_empty() {
            "%empty".to_string()
        } else {
            p.rhs()
                .iter()
                .map(|&s| self.name_of(s))
                .collect::<Vec<_>>()
                .join(" ")
        };
        format!("{} -> {}", self.nonterminal_name(p.lhs()), rhs)
    }
}

impl fmt::Display for Grammar {
    /// Writes the grammar back in the text format — precedence
    /// declarations (ascending), `%start`, one production per line with
    /// `%prec` annotations — such that re-parsing reproduces the grammar
    /// exactly (a tested fixpoint).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Precedence levels, weakest first, one declaration per level.
        let mut levels: Vec<u16> = self
            .terminals()
            .filter_map(|t| self.precedence_of(t).map(|p| p.level))
            .collect();
        levels.sort_unstable();
        levels.dedup();
        for level in levels {
            let mut assoc = None;
            let names: Vec<String> = self
                .terminals()
                .filter_map(|t| {
                    let p = self.precedence_of(t)?;
                    (p.level == level).then(|| {
                        assoc = Some(p.assoc);
                        quoted(self.terminal_name(t))
                    })
                })
                .collect();
            let keyword = match assoc.expect("level has members") {
                crate::parse::Assoc::Left => "%left",
                crate::parse::Assoc::Right => "%right",
                crate::parse::Assoc::NonAssoc => "%nonassoc",
            };
            writeln!(f, "{keyword} {}", names.join(" "))?;
        }
        writeln!(f, "%start {}", self.nonterminal_name(self.start()))?;
        for (id, p) in self.iter_productions() {
            if id.index() == 0 {
                continue;
            }
            let rhs = if p.is_empty() {
                "%empty".to_string()
            } else {
                p.rhs()
                    .iter()
                    .map(|&s| quoted(self.name_of(s)))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            let prec = match p.prec_override() {
                Some(t) => format!(" %prec {}", quoted(self.terminal_name(t))),
                None => String::new(),
            };
            writeln!(f, "{} : {}{} ;", self.nonterminal_name(p.lhs()), rhs, prec)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_grammar;
    use crate::ProdId;

    #[test]
    fn production_rendering() {
        let g = parse_grammar("s : \"a\" s | ;").unwrap();
        assert_eq!(g.production_to_string(ProdId::START), "<start> -> s");
        assert_eq!(g.production_to_string(ProdId::new(1)), "s -> a s");
        assert_eq!(g.production_to_string(ProdId::new(2)), "s -> %empty");
    }

    #[test]
    fn display_preserves_precedence_and_prec_overrides() {
        let src = r#"
            %left "+" "-"
            %right UMINUS
            %nonassoc "<"
            e : e "+" e | e "-" e | e "<" e | "-" e %prec UMINUS | NUM ;
        "#;
        let g = parse_grammar(src).unwrap();
        let text = g.to_string();
        let g2 = parse_grammar(&text).unwrap();
        assert_eq!(g, g2, "full-fidelity round trip:\n{text}");
        assert!(text.contains("%left"));
        assert!(text.contains("%right UMINUS"));
        assert!(text.contains("%nonassoc"));
        assert!(text.contains("%prec UMINUS"));
    }

    #[test]
    fn display_round_trips_through_parser() {
        let g = parse_grammar("%start e  e : e \"+\" t | t ; t : \"x\" | ;").unwrap();
        let text = g.to_string();
        let g2 = parse_grammar(&text).unwrap();
        assert_eq!(g.production_count(), g2.production_count());
        assert_eq!(g.terminal_count(), g2.terminal_count());
        assert_eq!(
            g.nonterminal_name(g.start()),
            g2.nonterminal_name(g2.start())
        );
        // And the rendered productions agree textually.
        for (id, _) in g.iter_productions() {
            assert_eq!(g.production_to_string(id), g2.production_to_string(id));
        }
    }
}
