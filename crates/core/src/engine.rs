//! The full DeRemer–Pennello pipeline.

use lalr_automata::{Lr0Automaton, NtTransId};
use lalr_bitset::{BitMatrix, BitSet};
use lalr_digraph::{digraph, digraph_levels, digraph_levels_recorded, DigraphStats, Graph};
use lalr_grammar::Grammar;
use lalr_obs::Recorder;

use crate::conflicts::{find_conflicts, Conflict};
use crate::lookahead::LookaheadSets;
use crate::parallel::Parallelism;
use crate::relations::{RelationStats, Relations};

/// The result of running the paper's algorithm: `Read`, `Follow` and `LA`
/// sets, plus the structural statistics the evaluation reports.
///
/// # Examples
///
/// ```
/// use lalr_automata::Lr0Automaton;
/// use lalr_core::LalrAnalysis;
/// use lalr_grammar::parse_grammar;
///
/// let g = parse_grammar(
///     "e : e \"+\" t | t ; t : t \"*\" f | f ; f : \"(\" e \")\" | \"id\" ;",
/// )?;
/// let lr0 = Lr0Automaton::build(&g);
/// let lalr = LalrAnalysis::compute(&g, &lr0);
/// assert!(!lalr.grammar_not_lr_k()); // `reads` is acyclic here
/// assert!(lalr.conflicts(&g, &lr0).is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct LalrAnalysis {
    read: BitMatrix,
    follow: BitMatrix,
    la: LookaheadSets,
    relation_stats: RelationStats,
    reads_traversal: DigraphStats,
    includes_traversal: DigraphStats,
}

impl LalrAnalysis {
    /// Runs the complete computation: relations → `Read` → `Follow` → `LA`.
    pub fn compute(grammar: &Grammar, lr0: &Lr0Automaton) -> LalrAnalysis {
        LalrAnalysis::compute_with(grammar, lr0, &Parallelism::sequential())
    }

    /// Runs the complete computation with the configured thread count.
    ///
    /// The relation build shards its per-transition loops and the two
    /// Digraph passes run level-scheduled over the condensation
    /// ([`lalr_digraph::digraph_levels`]); the resulting `Read`, `Follow`
    /// and `LA` sets are bit-identical to the sequential pipeline's.
    pub fn compute_with(
        grammar: &Grammar,
        lr0: &Lr0Automaton,
        parallelism: &Parallelism,
    ) -> LalrAnalysis {
        LalrAnalysis::compute_recorded(grammar, lr0, parallelism, &lalr_obs::NULL)
    }

    /// [`LalrAnalysis::compute_with`] under an observer.
    ///
    /// Phases are bracketed by spans (`relations.build`,
    /// `digraph.reads`, `digraph.includes`, `la.union`,
    /// `relations.stats`) and, when the recorder is enabled, the
    /// structural pipeline counters (relation edges, SCC counts, level
    /// widths, bitset OR operations, LA unions) are reported. With the
    /// null recorder this is exactly [`LalrAnalysis::compute_with`] —
    /// the enabled checks compile down to one indirect call per phase.
    pub fn compute_recorded(
        grammar: &Grammar,
        lr0: &Lr0Automaton,
        parallelism: &Parallelism,
        rec: &dyn Recorder,
    ) -> LalrAnalysis {
        let relations = Relations::build_parallel_recorded(grammar, lr0, parallelism, rec);
        LalrAnalysis::from_relations_recorded(grammar, lr0, &relations, parallelism, rec)
    }

    /// Runs the Digraph phases over prebuilt relations (lets benchmarks
    /// time the phases separately).
    pub fn from_relations(
        grammar: &Grammar,
        lr0: &Lr0Automaton,
        relations: &Relations,
    ) -> LalrAnalysis {
        LalrAnalysis::from_relations_with(grammar, lr0, relations, &Parallelism::sequential())
    }

    /// Parallel analogue of [`LalrAnalysis::from_relations`].
    pub fn from_relations_with(
        grammar: &Grammar,
        lr0: &Lr0Automaton,
        relations: &Relations,
        parallelism: &Parallelism,
    ) -> LalrAnalysis {
        LalrAnalysis::from_relations_recorded(grammar, lr0, relations, parallelism, &lalr_obs::NULL)
    }

    /// Recorded analogue of [`LalrAnalysis::from_relations_with`]; see
    /// [`LalrAnalysis::compute_recorded`] for the span and counter
    /// vocabulary.
    pub fn from_relations_recorded(
        grammar: &Grammar,
        lr0: &Lr0Automaton,
        relations: &Relations,
        parallelism: &Parallelism,
        rec: &dyn Recorder,
    ) -> LalrAnalysis {
        let threads = parallelism.threads();

        // One Digraph pass under a named span. When the recorder is
        // enabled the counting traversal runs instead (identical result,
        // plus union/level tallies reported under `prefix.*` counters).
        let traverse = |graph: &Graph,
                        sets: &mut BitMatrix,
                        name: &'static str,
                        counters: &[&'static str; 4]|
         -> DigraphStats {
            let _span = lalr_obs::span(rec, name);
            if rec.is_enabled() {
                let report = digraph_levels_recorded(graph, sets, threads, rec);
                let [unions, sccs, levels, width] = *counters;
                rec.add(unions, report.counts.unions);
                rec.add(sccs, report.stats.scc_count as u64);
                rec.add(levels, report.levels as u64);
                rec.add(width, report.max_width as u64);
                report.stats
            } else if threads > 1 {
                digraph_levels(graph, sets, threads)
            } else {
                digraph(graph, sets)
            }
        };

        // Phase 1: Read = Digraph(reads, DR).
        let mut read = relations.dr().clone();
        let reads_traversal = traverse(
            relations.reads(),
            &mut read,
            "digraph.reads",
            &[
                "digraph.reads.or_ops",
                "digraph.reads.sccs",
                "digraph.reads.levels",
                "digraph.reads.max_level_width",
            ],
        );

        // Phase 2: Follow = Digraph(includes, Read).
        let mut follow = read.clone();
        let includes_traversal = traverse(
            relations.includes(),
            &mut follow,
            "digraph.includes",
            &[
                "digraph.includes.or_ops",
                "digraph.includes.sccs",
                "digraph.includes.levels",
                "digraph.includes.max_level_width",
            ],
        );

        // Phase 3: LA(q, A→ω) = ⋃ Follow(p, A) over lookback. Pure dense
        // index arithmetic: each union ORs a Follow matrix row straight
        // into the LA matrix row of the reduction point — no hashing, no
        // per-edge allocation.
        let la_span = lalr_obs::span(rec, "la.union");
        let mut la = LookaheadSets::with_index(
            relations.reduction_index().clone(),
            grammar.terminal_count(),
        );
        // Collect the lookback edges as (reduction row, Follow row) ops
        // and hand them to the batched kernel lane, which tiles the LA
        // matrix to L2 and loads each hot Follow row once per tile (and
        // fans out across threads when the op list is large enough).
        let mut la_reductions = 0u64;
        let mut la_ops: Vec<(u32, u32)> = Vec::new();
        for (rid, transitions) in relations.lookback_entries() {
            la.touch_id(rid);
            la_reductions += 1;
            for &t in transitions {
                la_ops.push((rid.index() as u32, t.index() as u32));
            }
        }
        let la_unions = la.union_rows_batch(&mut la_ops, &follow, threads);
        // The augmented production has no lookback (no transition ever reads
        // `<start>`); its "reduction" is the accept action on $.
        la.insert(
            lr0.accept_state(grammar),
            lalr_grammar::ProdId::START,
            lalr_grammar::Terminal::EOF,
        );
        if rec.is_enabled() {
            rec.add("la.reduction_points", la_reductions);
            rec.add("la.or_ops", la_unions);
            rec.add("kernel.la.batch_ops", la_unions);
            rec.add("kernel.row_words", la.layout().words() as u64);
        }
        drop(la_span);

        let relation_stats = {
            let _span = lalr_obs::span(rec, "relations.stats");
            relations.stats()
        };

        LalrAnalysis {
            read,
            follow,
            la,
            relation_stats,
            reads_traversal,
            includes_traversal,
        }
    }

    /// The LALR(1) look-ahead sets.
    pub fn lookaheads(&self) -> &LookaheadSets {
        &self.la
    }

    /// Consumes the analysis, returning the look-ahead sets.
    pub fn into_lookaheads(self) -> LookaheadSets {
        self.la
    }

    /// `Read(p, A)` for a nonterminal transition.
    pub fn read_set(&self, t: NtTransId) -> BitSet {
        self.read.row_to_bitset(t.index())
    }

    /// `Follow(p, A)` for a nonterminal transition.
    pub fn follow_set(&self, t: NtTransId) -> BitSet {
        self.follow.row_to_bitset(t.index())
    }

    /// Statistics of the relations (Table 1 columns).
    pub fn relation_stats(&self) -> &RelationStats {
        &self.relation_stats
    }

    /// Digraph statistics of the `reads` pass.
    pub fn reads_traversal(&self) -> &DigraphStats {
        &self.reads_traversal
    }

    /// Digraph statistics of the `includes` pass.
    pub fn includes_traversal(&self) -> &DigraphStats {
        &self.includes_traversal
    }

    /// The paper's Theorem: a nontrivial cycle in `reads` proves the
    /// grammar is not LR(k) for any k.
    pub fn grammar_not_lr_k(&self) -> bool {
        self.reads_traversal.has_cycle()
    }

    /// Raw (unresolved) parse-table conflicts under these look-aheads.
    pub fn conflicts(&self, grammar: &Grammar, lr0: &Lr0Automaton) -> Vec<Conflict> {
        find_conflicts(grammar, lr0, &self.la)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalr_automata::StateId;
    use lalr_grammar::{parse_grammar, ProdId, Symbol, Terminal};

    fn names(g: &Grammar, set: lalr_bitset::BitSetRef<'_>) -> Vec<String> {
        set.iter()
            .map(|i| g.terminal_name(Terminal::new(i)).to_string())
            .collect()
    }

    #[test]
    fn dragon_expression_lookaheads() {
        let g =
            parse_grammar("e : e \"+\" t | t ; t : t \"*\" f | f ; f : \"(\" e \")\" | \"id\" ;")
                .unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let a = LalrAnalysis::compute(&g, &lr0);

        // State reached by "id" reduces f → id with LA = FOLLOW(f) here
        // = {$, +, *, )}.
        let id = g.terminal_by_name("id").unwrap();
        let q = lr0.transition(StateId::START, id.into()).unwrap();
        let f = g.nonterminal_by_name("f").unwrap();
        let f_id = g.productions_of(f)[1];
        let la = a.lookaheads().la(q, f_id).unwrap();
        assert_eq!(names(&g, la), vec!["$", "+", "*", ")"]);
    }

    #[test]
    fn lalr_but_not_slr_grammar_is_conflict_free() {
        // The classic LALR-not-SLR grammar (dragon book 4.48-style):
        // S → L = R | R ;  L → * R | id ;  R → L
        let g = parse_grammar("s : l \"=\" r | r ; l : \"*\" r | \"id\" ; r : l ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let a = LalrAnalysis::compute(&g, &lr0);
        assert!(
            a.conflicts(&g, &lr0).is_empty(),
            "LALR(1) must resolve this"
        );

        // The telltale state: after `l`, reduce r → l must NOT carry "=".
        let l = g.nonterminal_by_name("l").unwrap();
        let r = g.nonterminal_by_name("r").unwrap();
        let q = lr0
            .transition(StateId::START, Symbol::NonTerminal(l))
            .unwrap();
        let r_l = g.productions_of(r)[0];
        let la = a.lookaheads().la(q, r_l).unwrap();
        assert_eq!(names(&g, la), vec!["$"], "SLR would wrongly include '='");
    }

    #[test]
    fn accept_reduction_has_eof() {
        let g = parse_grammar("s : \"a\" ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let a = LalrAnalysis::compute(&g, &lr0);
        let acc = lr0.accept_state(&g);
        let la = a.lookaheads().la(acc, ProdId::START).unwrap();
        assert_eq!(names(&g, la), vec!["$"]);
    }

    #[test]
    fn reads_cycle_flags_non_lr_k() {
        // From the paper: a grammar whose `reads` relation is cyclic is not
        // LR(k) for any k. Classic witness: S → A x, A → B C nullable chain
        // cycling: here B and C both nullable with transitions following
        // each other cyclically requires an ambiguous-ish grammar:
        //   s : a "x" ; a : b c | ; b : c a | ; c : a b | ;
        let g = parse_grammar("s : a \"x\" ; a : b c | ; b : c a | ; c : a b | ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let a = LalrAnalysis::compute(&g, &lr0);
        assert!(a.grammar_not_lr_k());
    }

    #[test]
    fn acyclic_reads_on_plain_grammar() {
        let g = parse_grammar("s : \"a\" s | \"b\" ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let a = LalrAnalysis::compute(&g, &lr0);
        assert!(!a.grammar_not_lr_k());
        assert_eq!(a.reads_traversal().cyclic_nodes, 0);
    }

    #[test]
    fn follow_sets_contain_read_sets() {
        let g = parse_grammar("s : a b ; a : \"x\" | ; b : \"y\" | ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let a = LalrAnalysis::compute(&g, &lr0);
        for i in 0..lr0.nt_transitions().len() {
            let id = lalr_automata::NtTransId::new(i);
            assert!(a.read_set(id).is_subset(&a.follow_set(id)));
        }
    }
}
