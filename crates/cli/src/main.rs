//! `lalrgen` — command-line front end; see `lalr_cli` for the commands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match lalr_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("lalrgen: {e}");
            std::process::exit(e.code);
        }
    }
}
