//! Naive fixpoint reference for the Digraph problem.

use lalr_bitset::BitMatrix;

use crate::Graph;

/// Solves the same equation as [`crate::digraph`] by repeated relaxation:
/// sweep all edges, `F(u) ∪= F(v)`, until a full sweep changes nothing.
///
/// Worst case `O(n · m)` set unions versus the Digraph algorithm's
/// `O(n + m)`; this is the baseline for ablation experiment **E6** and the
/// oracle the property tests compare [`crate::digraph`] against.
///
/// # Panics
///
/// Panics if `sets.rows() != graph.node_count()`.
///
/// # Examples
///
/// ```
/// use lalr_bitset::BitMatrix;
/// use lalr_digraph::{naive_closure, Graph};
///
/// let g = Graph::from_edges(2, [(0, 1)]);
/// let mut f = BitMatrix::new(2, 4);
/// f.set(1, 3);
/// naive_closure(&g, &mut f);
/// assert!(f.get(0, 3));
/// ```
pub fn naive_closure(graph: &Graph, sets: &mut BitMatrix) {
    assert_eq!(
        sets.rows(),
        graph.node_count(),
        "one set row is required per graph node"
    );
    loop {
        let mut changed = false;
        for (u, v) in graph.edges() {
            changed |= sets.union_rows(u, v);
        }
        if !changed {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixpoint_on_cycle() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let mut m = BitMatrix::new(3, 4);
        m.set(0, 0);
        m.set(1, 1);
        m.set(2, 2);
        naive_closure(&g, &mut m);
        for r in 0..3 {
            assert_eq!(m.iter_row(r).collect::<Vec<_>>(), vec![0, 1, 2]);
        }
    }

    #[test]
    fn no_edges_is_identity() {
        let g = Graph::new(2);
        let mut m = BitMatrix::new(2, 4);
        m.set(0, 1);
        let before = m.clone();
        naive_closure(&g, &mut m);
        assert_eq!(m, before);
    }
}
