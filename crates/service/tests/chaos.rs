//! Chaos soak: eight client threads drive a real TCP daemon through a
//! seeded fault schedule — injected read/write failures, partial
//! responses, compile panics, artificial latency, and cache-eviction
//! storms — with a retrying client. The assertions are the resilience
//! contract:
//!
//! * **No hangs, no lost responses**: every request eventually gets an
//!   `ok` reply (the harness's own completion is the no-hang proof).
//! * **Byte-identical artifacts**: each normalized response line equals
//!   the one a fault-free single-threaded reference produces.
//! * **Every fault accounted for**: per-rule `injected` equals the
//!   deterministic `expected` recompute, and the schedule really fired.
//!
//! The whole soak runs across three PRNG seeds; the stateless hit-hash
//! trigger design is what makes `injected == expected` hold regardless
//! of how the threads interleaved.

use std::sync::Arc;
use std::time::Duration;

use lalr_core::Parallelism;
use lalr_service::protocol::response_to_line;
use lalr_service::{
    call_with_retry, Daemon, DaemonConfig, Fault, FaultInjector, FaultPlan, GrammarFormat,
    ParseTarget, Request, RetryPolicy, Service, ServiceConfig, Trigger,
};

/// One round of the mixed corpus workload: compile, classify and table
/// per grammar, then a **parse-heavy tail** — batched parse requests
/// carrying generated sentences plus their single-token mutants, so the
/// `service.parse` / `service.parse.doc` failpoints and the per-document
/// verdict encoding all sit on the differential path.
fn workload() -> Vec<Request> {
    let mut requests = Vec::new();
    for entry in lalr_corpus::all_entries() {
        let grammar = entry.source.to_string();
        requests.push(Request::Compile {
            grammar: grammar.clone(),
            format: GrammarFormat::Native,
        });
        requests.push(Request::Classify {
            grammar: grammar.clone(),
            format: GrammarFormat::Native,
        });
        requests.push(Request::Table {
            grammar: grammar.clone(),
            format: GrammarFormat::Native,
            compressed: true,
        });
        let parsed = entry.grammar();
        let to_doc = |s: &[lalr_grammar::Terminal]| {
            s.iter()
                .map(|&t| parsed.terminal_name(t))
                .collect::<Vec<_>>()
                .join(" ")
        };
        let sentences = lalr_corpus::sentences::generate_many(&parsed, 0, 4, 20);
        if !sentences.is_empty() {
            let mut documents: Vec<String> = sentences.iter().map(|s| to_doc(s)).collect();
            for (_, mutant) in lalr_corpus::sentences::mutate_many(&parsed, &sentences, 7, 4) {
                documents.push(to_doc(&mutant));
            }
            requests.push(Request::Parse {
                target: ParseTarget::Text {
                    grammar: grammar.clone(),
                    format: GrammarFormat::Native,
                },
                documents,
                recover: false,
                sync: Vec::new(),
            });
        }
    }
    requests
}

/// Drops the scheduling-dependent `cached` flag: a retried request may
/// find its artifact cached by the aborted first attempt.
fn normalize(line: &str) -> String {
    line.replace("\"cached\":true", "\"cached\":false")
}

/// The soak's fault schedule. Every armed fault is *recoverable* from
/// the client's point of view: dropped/truncated/partial responses are
/// `closed` transport errors, injected compile panics are `panicked`
/// replies — all retryable. (Garbage injection, which surfaces as a
/// non-retryable `bad_request`, gets its own test in `hostile.rs`.)
fn plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .rule("daemon.read", Fault::Error, Trigger::Rate(0.04))
        .rule("daemon.read", Fault::Truncate, Trigger::Rate(0.03))
        .rule("daemon.read", Fault::Delay(1), Trigger::Rate(0.05))
        .rule("daemon.write", Fault::Error, Trigger::Rate(0.03))
        .rule("daemon.write", Fault::PartialWrite, Trigger::Rate(0.04))
        .rule("service.compile", Fault::Panic, Trigger::Rate(0.10))
        .rule("service.compile", Fault::Delay(2), Trigger::Rate(0.15))
        .rule("service.parse", Fault::Panic, Trigger::Rate(0.05))
        .rule("service.parse", Fault::Delay(1), Trigger::Rate(0.08))
        .rule("service.parse.doc", Fault::Error, Trigger::Rate(0.01))
        .rule("cache.storm", Fault::EvictAll, Trigger::EveryNth(17))
        .rule("client.read", Fault::Error, Trigger::Rate(0.02))
        // Persistent-store faults at a combined 20% per failpoint: torn,
        // truncated, and garbage publishes, plus corrupted read-backs.
        // None of these may ever surface to a client — a failed publish
        // keeps the in-memory artifact, a corrupt load recompiles.
        .rule("store.write", Fault::Truncate, Trigger::Rate(0.08))
        .rule("store.write", Fault::Garbage, Trigger::Rate(0.06))
        .rule("store.write", Fault::PartialWrite, Trigger::Rate(0.06))
        .rule("store.read", Fault::Garbage, Trigger::Rate(0.20))
}

/// Which front end a soak round runs against; both must uphold the
/// same resilience contract under the same fault schedule.
#[derive(Clone, Copy)]
enum Front {
    Threaded,
    EventLoop,
}

fn run_soak(seed: u64, front: Front, expected_lines: &[String], requests: &Arc<Vec<Request>>) {
    const THREADS: usize = 8;
    let faults = plan(seed).build();
    let store_dir =
        std::env::temp_dir().join(format!("lalr-chaos-store-{seed:x}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let config = DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        drain_deadline: Duration::from_secs(2),
        faults: faults.clone(),
        service: ServiceConfig {
            workers: Parallelism::new(THREADS),
            faults: faults.clone(),
            store_dir: Some(store_dir.clone()),
            ..ServiceConfig::default()
        },
        ..DaemonConfig::default()
    };
    enum Running {
        Threaded(Daemon),
        EventLoop(lalr_service::EventDaemon),
    }
    let daemon = match front {
        Front::Threaded => Running::Threaded(Daemon::start(config).expect("bind chaos daemon")),
        Front::EventLoop => Running::EventLoop(
            lalr_service::EventDaemon::start(config, 2).expect("bind chaos daemon"),
        ),
    };
    let addr = match &daemon {
        Running::Threaded(d) => d.addr().to_string(),
        Running::EventLoop(d) => d.addr().to_string(),
    };

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let addr = addr.clone();
            let requests = Arc::clone(requests);
            let faults = faults.clone();
            std::thread::spawn(move || {
                // Tight backoff keeps the soak fast; the generous retry
                // budget makes 40 consecutive injected failures (each
                // under ~25% likely) the only way to a spurious failure.
                let policy = RetryPolicy {
                    retries: 40,
                    backoff: Duration::from_millis(1),
                    cap: Duration::from_millis(16),
                    seed: seed ^ t as u64,
                };
                let mut got = Vec::new();
                for i in (t..requests.len()).step_by(THREADS) {
                    let reply = call_with_retry(
                        &addr,
                        &requests[i],
                        None,
                        Duration::from_secs(10),
                        &policy,
                        &faults,
                    )
                    .unwrap_or_else(|e| panic!("request {i} never succeeded: {e}"));
                    assert!(
                        reply.is_ok(),
                        "request {i} settled on an error reply: {}",
                        reply.raw
                    );
                    got.push((i, normalize(&reply.raw), reply.attempts));
                }
                got
            })
        })
        .collect();

    let mut attempts_total = 0u64;
    let mut actual = vec![String::new(); requests.len()];
    for h in handles {
        for (i, line, attempts) in h.join().expect("soak client panicked") {
            actual[i] = line;
            attempts_total += u64::from(attempts);
        }
    }

    // Byte-identical artifacts versus the fault-free reference.
    for (i, (want, got)) in expected_lines.iter().zip(&actual).enumerate() {
        assert_eq!(
            got,
            want,
            "seed {seed:#x}: request {i} ({:?}) diverged under chaos",
            requests[i].op()
        );
    }

    // Every injected fault is accounted for: the live counters agree
    // with the deterministic recompute of the schedule, per rule.
    let stats = faults.stats();
    for s in &stats {
        assert_eq!(
            s.injected, s.expected,
            "seed {seed:#x}: rule {s:?} lost count of its own schedule"
        );
    }
    let injected = faults.total_injected();
    assert!(
        injected > 0,
        "seed {seed:#x}: the schedule never fired — the soak tested nothing"
    );
    // Transport-level faults forced retries (compile panics can also be
    // absorbed by coalesced waiters, so compare against transport only).
    let transport: u64 = ["daemon.read", "daemon.write", "client.read"]
        .iter()
        .map(|p| faults.injected_at(p))
        .sum();
    assert!(
        attempts_total >= requests.len() as u64 + transport / 2,
        "seed {seed:#x}: {attempts_total} attempts for {} requests with \
         {transport} transport faults — retries unaccounted for",
        requests.len()
    );

    // The store path really was exercised under fault pressure (writes
    // attempted, read-backs attempted) — the byte-equality above is what
    // proves none of it leaked to a client.
    assert!(
        faults.injected_at("store.write") + faults.injected_at("store.read") > 0,
        "seed {seed:#x}: store failpoints never fired"
    );

    let summary = match daemon {
        Running::Threaded(d) => {
            d.stop();
            d.join()
        }
        Running::EventLoop(d) => {
            d.stop();
            d.join()
        }
    };
    assert_eq!(
        summary.aborted, 0,
        "seed {seed:#x}: drain aborted connections after clients finished"
    );
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn chaos_soak_eight_threads_three_seeds() {
    let requests = Arc::new(workload());
    assert!(requests.len() >= 30, "workload is non-trivial");

    // Fault-free single-threaded reference, computed once.
    let reference = Service::new(ServiceConfig {
        workers: Parallelism::sequential(),
        ..ServiceConfig::default()
    });
    let expected: Vec<String> = requests
        .iter()
        .map(|r| normalize(&response_to_line(&reference.call(r.clone(), None))))
        .collect();
    drop(reference);

    run_soak(0xA11CE, Front::Threaded, &expected, &requests);
    run_soak(0xCAFE, Front::Threaded, &expected, &requests);
    // The epoll front end upholds the same contract under the same
    // schedule (skipped where the backend is unavailable).
    if lalr_net::supported() {
        run_soak(0xB0B, Front::EventLoop, &expected, &requests);
    } else {
        run_soak(0xB0B, Front::Threaded, &expected, &requests);
    }
}

/// The schedule is a pure function of the seed: two injectors built from
/// the same plan fire on exactly the same hit indices even though the
/// soak's thread interleavings differ run to run.
#[test]
fn chaos_schedule_replays_per_seed() {
    for seed in [1u64, 2, 3] {
        let a = plan(seed).build();
        let b = plan(seed).build();
        for point in [
            "daemon.read",
            "daemon.write",
            "service.compile",
            "service.parse",
            "service.parse.doc",
        ] {
            let fire_a: Vec<Option<Fault>> = (0..300).map(|_| a.at(point)).collect();
            let fire_b: Vec<Option<Fault>> = (0..300).map(|_| b.at(point)).collect();
            assert_eq!(fire_a, fire_b, "seed {seed}, point {point}");
        }
        assert_eq!(
            a.stats(),
            b.stats(),
            "identical drives must leave identical counters"
        );
    }
}

/// Injected compile panics must neither hang coalesced waiters nor
/// poison the cache: the panicked flight resolves with a `panicked`
/// error for everyone, and a retry recompiles successfully.
#[test]
fn injected_compile_panic_resolves_waiters_and_is_not_cached() {
    let faults = FaultPlan::new(9)
        .rule("service.compile", Fault::Panic, Trigger::OnHits(vec![1]))
        .build();
    let service = Arc::new(Service::new(ServiceConfig {
        workers: Parallelism::new(4),
        faults: faults.clone(),
        ..ServiceConfig::default()
    }));
    let req = || Request::Compile {
        grammar: "e : e \"+\" t | t ; t : \"x\" ;".to_string(),
        format: GrammarFormat::Native,
    };
    // Four concurrent requests for the same grammar: whoever leads hits
    // the injected panic on compile #1; every coalesced waiter must be
    // *released* with an error, not left on the condvar.
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || service.call(req(), None))
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let panicked = responses
        .iter()
        .filter(|r| {
            matches!(r, lalr_service::Response::Error(lalr_service::ServiceError::Panicked(m))
                if m.contains("injected fault"))
        })
        .count();
    assert!(panicked >= 1, "{responses:?}");

    // Hit #1 consumed the panic; a fresh request now compiles cleanly —
    // the failed flight must not have been committed to the cache.
    match service.call(req(), None) {
        lalr_service::Response::Compile(c) => assert!(!c.cached || panicked < 4, "{c:?}"),
        other => panic!("retry after injected panic failed: {other:?}"),
    }
    assert_eq!(faults.injected_at("service.compile"), 1);
}

/// A fault at the batch boundary (`service.parse.doc`) aborts the whole
/// batch with one structured retryable error — never a half-filled
/// verdict list — and the retry parses every document.
#[test]
fn injected_batch_boundary_fault_aborts_cleanly_and_retry_succeeds() {
    let faults = FaultPlan::new(21)
        .rule("service.parse.doc", Fault::Error, Trigger::OnHits(vec![2]))
        .build();
    let service = Service::new(ServiceConfig {
        workers: Parallelism::sequential(),
        faults: faults.clone(),
        ..ServiceConfig::default()
    });
    let req = || Request::Parse {
        target: ParseTarget::Text {
            grammar: "e : e \"+\" t | t ; t : \"x\" ;".to_string(),
            format: GrammarFormat::Native,
        },
        documents: vec!["x".into(), "x + x".into(), "x +".into()],
        recover: false,
        sync: Vec::new(),
    };
    // Hit #2 is the boundary before document 2: the batch dies mid-way.
    match service.call(req(), None) {
        lalr_service::Response::Error(e) => {
            assert!(e.is_retryable(), "{e}");
            assert!(e.to_string().contains("service.parse.doc"), "{e}");
        }
        other => panic!("expected injected batch abort, got {other:?}"),
    }
    // The retry sees hits #3–#5 (unarmed) and parses all three documents.
    match service.call(req(), None) {
        lalr_service::Response::Parse(p) => {
            assert_eq!(p.docs.len(), 3);
            assert!(p.docs[0].accepted && p.docs[1].accepted);
            assert!(!p.docs[2].accepted);
        }
        other => panic!("retry after batch abort failed: {other:?}"),
    }
    assert_eq!(faults.injected_at("service.parse.doc"), 1);
    let stats = service.stats();
    // The aborted batch recorded no documents; only the retry counted.
    assert_eq!(stats.parse.documents, 3);
    assert_eq!(stats.parse.batches, 2, "both batches resolved an artifact");
}

/// A saturated service sheds with an explicit `overloaded` error instead
/// of queueing without bound, and the shed shows up in the stats.
#[test]
fn full_queue_sheds_with_explicit_overloaded_error() {
    let faults = FaultPlan::new(3)
        // Every compile sleeps, so one worker + one queue slot saturate.
        .rule("service.compile", Fault::Delay(60), Trigger::Rate(1.0))
        .build();
    let service = Arc::new(Service::new(ServiceConfig {
        workers: Parallelism::sequential(),
        max_pending: 1,
        cache: None,
        faults,
        ..ServiceConfig::default()
    }));
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                service.call(
                    Request::Compile {
                        grammar: format!("s : \"x{t}\" ;"),
                        format: GrammarFormat::Native,
                    },
                    None,
                )
            })
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let shed = responses
        .iter()
        .filter(|r| {
            matches!(
                r,
                lalr_service::Response::Error(lalr_service::ServiceError::Overloaded { .. })
            )
        })
        .count();
    assert!(
        shed >= 1,
        "six slow requests against worker=1/queue=1 must shed: {responses:?}"
    );
    let stats = service.stats();
    assert_eq!(stats.shed, shed as u64);
    assert_eq!(stats.queue_limit, 1);
    assert!(
        stats.faults.iter().any(|f| f.point == "service.compile"),
        "snapshot carries the armed schedule: {:?}",
        stats.faults
    );
    // Shed responses carry the `overloaded` wire kind end to end.
    let line = response_to_line(&lalr_service::Response::Error(
        lalr_service::ServiceError::Overloaded {
            pending: 1,
            limit: 1,
        },
    ));
    assert!(line.contains("\"kind\":\"overloaded\""), "{line}");
}

/// `FaultInjector::disabled()` really is inert end to end: a service
/// built with it answers the workload with zero injected faults and no
/// fault series in its stats.
#[test]
fn disabled_injector_changes_nothing() {
    let service = Service::new(ServiceConfig {
        workers: Parallelism::sequential(),
        faults: FaultInjector::disabled(),
        ..ServiceConfig::default()
    });
    for r in workload().into_iter().take(8) {
        assert!(service.call(r, None).is_ok());
    }
    let stats = service.stats();
    assert_eq!(stats.errors, 0);
    assert!(stats.faults.is_empty());
    assert_eq!(stats.shed, 0);
}
