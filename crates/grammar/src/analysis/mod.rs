//! Classical grammar analyses.
//!
//! These are the fixpoint computations the DeRemer–Pennello relations are
//! built from: nullability (needed by `reads` and `includes`), `FIRST`
//! (needed by the canonical-LR(1) baseline), and `FOLLOW` (needed by the
//! SLR(1) baseline). Reachability, productivity and recursion structure
//! round out the grammar-statistics table (experiment **E1**).

mod first;
mod follow;
mod nullable;
mod recursion;
mod useful;

pub use first::{first_of_sequence, FirstSets};
pub use follow::FollowSets;
pub use nullable::{nullable, NullableSet};
pub use recursion::{left_recursive_nonterminals, RecursionKind};
pub use useful::{productive_nonterminals, reachable_symbols, Reachability};
