//! Offline placeholder for `serde`.
//!
//! The build environment has no network access, so the real `serde` crate
//! cannot be downloaded. The workspace's `serde` support is an *optional*
//! feature on `lalr-bitset` and `lalr-tables`; this stub exists only so
//! that Cargo can resolve the optional dependency edge offline. Enabling
//! the `serde` feature of those crates requires replacing this stub with
//! the real crate (the derive macros are not provided here).

#![forbid(unsafe_code)]
