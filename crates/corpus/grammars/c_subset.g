// An ANSI C subset: declarations, full statement set, and the complete
// 15-level expression precedence ladder. The dangling-else shift/reduce
// conflict is present, as in the real K&R/ANSI grammar.
%start translation_unit

translation_unit : external_decl | translation_unit external_decl ;

external_decl : function_def | declaration ;

function_def : decl_specs declarator compound_stmt ;

declaration : decl_specs init_declarators ";" | decl_specs ";" ;

decl_specs
    : type_spec
    | type_spec decl_specs
    | storage_spec
    | storage_spec decl_specs
    | qualifier
    | qualifier decl_specs
    ;

storage_spec : TYPEDEF | EXTERN | STATIC | AUTO | REGISTER ;
qualifier    : CONST | VOLATILE ;

type_spec
    : VOID | CHAR | SHORT | INT | LONG | FLOAT | DOUBLE | SIGNED | UNSIGNED
    | struct_spec
    | enum_spec
    | TYPE_NAME
    ;

struct_spec
    : struct_key IDENT "{" struct_decls "}"
    | struct_key "{" struct_decls "}"
    | struct_key IDENT
    ;
struct_key   : STRUCT | UNION ;
struct_decls : struct_decl | struct_decls struct_decl ;
struct_decl  : decl_specs struct_declarators ";" ;
struct_declarators : declarator | struct_declarators "," declarator ;

enum_spec
    : ENUM "{" enumerators "}"
    | ENUM IDENT "{" enumerators "}"
    | ENUM IDENT
    ;
enumerators : enumerator | enumerators "," enumerator ;
enumerator  : IDENT | IDENT "=" cond_expr ;

init_declarators : init_declarator | init_declarators "," init_declarator ;
init_declarator  : declarator | declarator "=" initializer ;
initializer      : assign_expr | "{" initializer_list "}" | "{" initializer_list "," "}" ;
initializer_list : initializer | initializer_list "," initializer ;

declarator : pointer direct_declarator | direct_declarator ;
pointer    : "*" | "*" pointer | "*" qualifier pointer ;

direct_declarator
    : IDENT
    | "(" declarator ")"
    | direct_declarator "[" cond_expr "]"
    | direct_declarator "[" "]"
    | direct_declarator "(" param_list ")"
    | direct_declarator "(" ")"
    ;

param_list : param_decl | param_list "," param_decl ;
param_decl : decl_specs declarator | decl_specs ;

compound_stmt : "{" block_items "}" | "{" "}" ;
block_items   : block_item | block_items block_item ;
block_item    : declaration | statement ;

statement
    : labeled_stmt
    | compound_stmt
    | expr_stmt
    | selection_stmt
    | iteration_stmt
    | jump_stmt
    ;

labeled_stmt
    : IDENT ":" statement
    | CASE cond_expr ":" statement
    | DEFAULT ":" statement
    ;

expr_stmt : ";" | expression ";" ;

selection_stmt
    : IF "(" expression ")" statement
    | IF "(" expression ")" statement ELSE statement
    | SWITCH "(" expression ")" statement
    ;

iteration_stmt
    : WHILE "(" expression ")" statement
    | DO statement WHILE "(" expression ")" ";"
    | FOR "(" expr_stmt expr_stmt ")" statement
    | FOR "(" expr_stmt expr_stmt expression ")" statement
    ;

jump_stmt
    : GOTO IDENT ";"
    | CONTINUE ";"
    | BREAK ";"
    | RETURN ";"
    | RETURN expression ";"
    ;

expression  : assign_expr | expression "," assign_expr ;

assign_expr : cond_expr | unary_expr assign_op assign_expr ;
assign_op   : "=" | MUL_ASSIGN | DIV_ASSIGN | MOD_ASSIGN | ADD_ASSIGN
            | SUB_ASSIGN | LEFT_ASSIGN | RIGHT_ASSIGN | AND_ASSIGN
            | XOR_ASSIGN | OR_ASSIGN ;

cond_expr : lor_expr | lor_expr "?" expression ":" cond_expr ;

lor_expr  : land_expr | lor_expr OR_OP land_expr ;
land_expr : ior_expr | land_expr AND_OP ior_expr ;
ior_expr  : xor_expr | ior_expr "|" xor_expr ;
xor_expr  : and_expr | xor_expr "^" and_expr ;
and_expr  : eq_expr | and_expr "&" eq_expr ;
eq_expr   : rel_expr | eq_expr EQ_OP rel_expr | eq_expr NE_OP rel_expr ;
rel_expr  : shift_expr
          | rel_expr "<" shift_expr | rel_expr ">" shift_expr
          | rel_expr LE_OP shift_expr | rel_expr GE_OP shift_expr ;
shift_expr : add_expr | shift_expr LEFT_OP add_expr | shift_expr RIGHT_OP add_expr ;
add_expr   : mul_expr | add_expr "+" mul_expr | add_expr "-" mul_expr ;
mul_expr   : cast_expr | mul_expr "*" cast_expr | mul_expr "/" cast_expr
           | mul_expr "%" cast_expr ;

cast_expr  : unary_expr | "(" type_name_ ")" cast_expr ;
type_name_ : decl_specs | decl_specs pointer ;

unary_expr
    : postfix_expr
    | INC_OP unary_expr
    | DEC_OP unary_expr
    | unary_op cast_expr
    | SIZEOF unary_expr
    | SIZEOF "(" type_name_ ")"
    ;
unary_op : "&" | "*" | "+" | "-" | "~" | "!" ;

postfix_expr
    : primary_expr
    | postfix_expr "[" expression "]"
    | postfix_expr "(" ")"
    | postfix_expr "(" arg_exprs ")"
    | postfix_expr "." IDENT
    | postfix_expr PTR_OP IDENT
    | postfix_expr INC_OP
    | postfix_expr DEC_OP
    ;
arg_exprs : assign_expr | arg_exprs "," assign_expr ;

primary_expr : IDENT | CONSTANT | STRING_LITERAL | "(" expression ")" ;
