//! Figure 1 — method time vs grammar size over synthetic families.
//!
//! Expected shape: DP grows near-linearly with the number of nonterminal
//! transitions; LR(1)-merge grows much faster with the split state count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lalr_automata::Lr0Automaton;
use lalr_bench::methods::Method;
use lalr_core::{LalrAnalysis, Parallelism};
use lalr_corpus::synthetic;

fn bench_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_ladder");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [5usize, 10, 20, 40] {
        let grammar = synthetic::expr_ladder(n);
        let lr0 = Lr0Automaton::build(&grammar);
        for method in [
            Method::DeRemerPennello,
            Method::Propagation,
            Method::Lr1Merge,
        ] {
            group.bench_with_input(
                BenchmarkId::new(method.label(), n),
                &(&grammar, &lr0),
                |b, (g, lr0)| b.iter(|| method.run(g, lr0)),
            );
        }
    }
    group.finish();
}

fn bench_nullable(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_nullable_blocks");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [4usize, 8, 12] {
        let grammar = synthetic::nullable_blocks(n);
        let lr0 = Lr0Automaton::build(&grammar);
        for method in [Method::DeRemerPennello, Method::Propagation] {
            group.bench_with_input(
                BenchmarkId::new(method.label(), n),
                &(&grammar, &lr0),
                |b, (g, lr0)| b.iter(|| method.run(g, lr0)),
            );
        }
    }
    group.finish();
}

fn bench_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_chain");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for depth in [25usize, 50, 100] {
        let grammar = synthetic::chain(depth);
        let lr0 = Lr0Automaton::build(&grammar);
        for method in [Method::DeRemerPennello, Method::Propagation] {
            group.bench_with_input(
                BenchmarkId::new(method.label(), depth),
                &(&grammar, &lr0),
                |b, (g, lr0)| b.iter(|| method.run(g, lr0)),
            );
        }
    }
    group.finish();
}

fn bench_parallel_pipeline(c: &mut Criterion) {
    // The full DP pipeline (relation build + both Digraph runs + LA
    // union), sequential vs the sharded/level-scheduled path at 2 and 4
    // threads, on the largest synthetic grammars. Speedup here is bounded
    // by the hardware's core count — record the host's
    // `available_parallelism` alongside the numbers (EXPERIMENTS.md E10).
    let mut group = c.benchmark_group("scaling_parallel_pipeline");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let grammars = [
        ("expr_ladder_40", synthetic::expr_ladder(40)),
        ("wide_forest_256", synthetic::wide_forest(256)),
        ("wide_forest_512", synthetic::wide_forest(512)),
    ];
    for (name, grammar) in &grammars {
        let lr0 = Lr0Automaton::build(grammar);
        group.bench_with_input(
            BenchmarkId::new("sequential", name),
            &(grammar, &lr0),
            |b, (g, lr0)| b.iter(|| LalrAnalysis::compute(g, lr0)),
        );
        for threads in [2usize, 4] {
            let par = Parallelism::new(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("parallel_t{threads}"), name),
                &(grammar, &lr0),
                |b, (g, lr0)| b.iter(|| LalrAnalysis::compute_with(g, lr0, &par)),
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ladder,
    bench_nullable,
    bench_chain,
    bench_parallel_pipeline
);
criterion_main!(benches);
