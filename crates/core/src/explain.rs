//! Conflict explanations.
//!
//! The DeRemer–Pennello relations don't just compute look-aheads fast —
//! they record *why* each terminal is in each set, which makes conflicts
//! explainable: [`explain_conflict`] reports an example viable prefix
//! reaching the conflict state, the items involved, and the
//! `lookback`/`includes`/`reads` chain that carries the offending terminal
//! into the reduction's look-ahead.

use lalr_automata::{Lr0Automaton, NtTransId, StateId};
use lalr_digraph::Graph;
use lalr_grammar::{Grammar, Symbol, Terminal};

use crate::conflicts::{Conflict, ConflictKind};
use crate::engine::LalrAnalysis;
use crate::relations::Relations;

/// Shortest path of symbols from the start state to `target` — an example
/// viable prefix accessing the state.
pub fn viable_prefix(lr0: &Lr0Automaton, target: StateId) -> Vec<Symbol> {
    let mut prev: Vec<Option<(StateId, Symbol)>> = vec![None; lr0.state_count()];
    let mut seen = vec![false; lr0.state_count()];
    let mut queue = std::collections::VecDeque::new();
    seen[StateId::START.index()] = true;
    queue.push_back(StateId::START);
    while let Some(s) = queue.pop_front() {
        if s == target {
            break;
        }
        for &(sym, to) in lr0.transitions(s) {
            if !seen[to.index()] {
                seen[to.index()] = true;
                prev[to.index()] = Some((s, sym));
                queue.push_back(to);
            }
        }
    }
    let mut path = Vec::new();
    let mut cur = target;
    while let Some((p, sym)) = prev[cur.index()] {
        path.push(sym);
        cur = p;
    }
    path.reverse();
    path
}

/// BFS path in a relation graph from `from` to the first node satisfying
/// `goal`, inclusive of both endpoints.
fn relation_path(graph: &Graph, from: usize, goal: impl Fn(usize) -> bool) -> Option<Vec<usize>> {
    let mut prev: Vec<Option<usize>> = vec![None; graph.node_count()];
    let mut seen = vec![false; graph.node_count()];
    let mut queue = std::collections::VecDeque::new();
    seen[from] = true;
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        if goal(u) {
            let mut path = vec![u];
            let mut cur = u;
            while let Some(p) = prev[cur] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &v in graph.successors(u) {
            let v = v as usize;
            if !seen[v] {
                seen[v] = true;
                prev[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    None
}

fn transition_name(grammar: &Grammar, lr0: &Lr0Automaton, id: NtTransId) -> String {
    let t = lr0.nt_transition(id);
    format!("({}, {})", t.from.index(), grammar.nonterminal_name(t.nt))
}

/// Explains how `terminal` enters `Follow` of the lookback transition
/// `start` (an index into the relation node space).
fn follow_provenance(
    grammar: &Grammar,
    lr0: &Lr0Automaton,
    relations: &Relations,
    analysis: &LalrAnalysis,
    start: NtTransId,
    terminal: Terminal,
) -> String {
    let t_idx = terminal.index();
    let in_dr = |node: usize| relations.dr().get(node, t_idx);
    let in_read = |node: usize| analysis.read_set(NtTransId::new(node)).contains(t_idx);

    // Walk includes from `start` to a node whose Read carries the terminal,
    // then walk reads within that node to a DR source.
    let Some(incl_path) = relation_path(relations.includes(), start.index(), in_read) else {
        return format!(
            "  (no includes path found — {} already carries it)",
            transition_name(grammar, lr0, start)
        );
    };
    let mut out = String::new();
    if incl_path.len() > 1 {
        let chain: Vec<String> = incl_path
            .iter()
            .map(|&n| transition_name(grammar, lr0, NtTransId::new(n)))
            .collect();
        out.push_str(&format!("  includes chain: {}\n", chain.join(" -> ")));
    }
    let read_node = *incl_path.last().expect("path nonempty");
    match relation_path(relations.reads(), read_node, in_dr) {
        Some(reads_path) if reads_path.len() > 1 => {
            let chain: Vec<String> = reads_path
                .iter()
                .map(|&n| transition_name(grammar, lr0, NtTransId::new(n)))
                .collect();
            out.push_str(&format!("  reads chain:    {}\n", chain.join(" -> ")));
            let last = *reads_path.last().expect("nonempty");
            out.push_str(&format!(
                "  {:?} is directly readable after {}\n",
                grammar.terminal_name(terminal),
                transition_name(grammar, lr0, NtTransId::new(last))
            ));
        }
        _ => {
            out.push_str(&format!(
                "  {:?} is directly readable after {}\n",
                grammar.terminal_name(terminal),
                transition_name(grammar, lr0, NtTransId::new(read_node))
            ));
        }
    }
    out
}

/// Renders a multi-line explanation of one conflict.
///
/// # Examples
///
/// ```
/// use lalr_automata::Lr0Automaton;
/// use lalr_core::{explain_conflict, LalrAnalysis, Relations};
/// use lalr_grammar::parse_grammar;
///
/// let g = parse_grammar("s : \"if\" s \"else\" s | \"if\" s | \"x\" ;")?;
/// let lr0 = Lr0Automaton::build(&g);
/// let rel = Relations::build(&g, &lr0);
/// let analysis = LalrAnalysis::compute(&g, &lr0);
/// let c = analysis.conflicts(&g, &lr0)[0];
/// let text = explain_conflict(&g, &lr0, &rel, &analysis, &c);
/// assert!(text.contains("viable prefix"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn explain_conflict(
    grammar: &Grammar,
    lr0: &Lr0Automaton,
    relations: &Relations,
    analysis: &LalrAnalysis,
    conflict: &Conflict,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}\n", conflict.display(grammar)));

    // An example prefix that reaches the state.
    let prefix = viable_prefix(lr0, conflict.state);
    let words: Vec<&str> = prefix.iter().map(|&s| grammar.name_of(s)).collect();
    out.push_str(&format!(
        "  viable prefix: {} .\n",
        if words.is_empty() {
            "(empty)".to_string()
        } else {
            words.join(" ")
        }
    ));

    // The items involved.
    let closure = lr0.closure(grammar, conflict.state);
    match conflict.kind {
        ConflictKind::ShiftReduce { reduce } => {
            for item in &closure {
                if item.next_symbol(grammar) == Some(Symbol::Terminal(conflict.terminal)) {
                    out.push_str(&format!("  shift:  {}\n", item.display(grammar)));
                }
            }
            out.push_str(&format!(
                "  reduce: {}\n",
                grammar.production_to_string(reduce)
            ));
            out.push_str(&explain_la_source(
                grammar, lr0, relations, analysis, conflict, reduce,
            ));
        }
        ConflictKind::ReduceReduce { first, second } => {
            for prod in [first, second] {
                out.push_str(&format!(
                    "  reduce: {}\n",
                    grammar.production_to_string(prod)
                ));
                out.push_str(&explain_la_source(
                    grammar, lr0, relations, analysis, conflict, prod,
                ));
            }
        }
    }
    out
}

fn explain_la_source(
    grammar: &Grammar,
    lr0: &Lr0Automaton,
    relations: &Relations,
    analysis: &LalrAnalysis,
    conflict: &Conflict,
    prod: lalr_grammar::ProdId,
) -> String {
    let mut out = String::new();
    for &lb in relations.lookback(conflict.state, prod) {
        if analysis.follow_set(lb).contains(conflict.terminal.index()) {
            out.push_str(&format!(
                "  {:?} reaches this reduction through lookback {}:\n",
                grammar.terminal_name(conflict.terminal),
                transition_name(grammar, lr0, lb)
            ));
            out.push_str(&follow_provenance(
                grammar,
                lr0,
                relations,
                analysis,
                lb,
                conflict.terminal,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalr_grammar::parse_grammar;

    fn explain_all(src: &str) -> Vec<String> {
        let g = parse_grammar(src).unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let rel = Relations::build(&g, &lr0);
        let analysis = LalrAnalysis::compute(&g, &lr0);
        analysis
            .conflicts(&g, &lr0)
            .iter()
            .map(|c| explain_conflict(&g, &lr0, &rel, &analysis, c))
            .collect()
    }

    #[test]
    fn dangling_else_explanation_names_both_actions() {
        let texts = explain_all("s : \"if\" s \"else\" s | \"if\" s | \"x\" ;");
        assert_eq!(texts.len(), 1);
        let t = &texts[0];
        assert!(t.contains("shift:"), "{t}");
        assert!(t.contains("reduce:"), "{t}");
        assert!(t.contains("viable prefix"), "{t}");
        assert!(t.contains("lookback"), "{t}");
    }

    #[test]
    fn reduce_reduce_explanation_covers_both_productions() {
        let texts = explain_all("s : a | b ; a : \"x\" ; b : \"x\" ;");
        assert_eq!(texts.len(), 1);
        let t = &texts[0];
        assert_eq!(t.matches("reduce:").count(), 2, "{t}");
    }

    #[test]
    fn viable_prefix_is_walkable() {
        let g = parse_grammar("e : e \"+\" t | t ; t : \"x\" ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        for state in lr0.states() {
            let prefix = viable_prefix(&lr0, state);
            assert_eq!(lr0.walk(StateId::START, &prefix), Some(state));
        }
    }

    #[test]
    fn provenance_traverses_includes_chain() {
        // The "=" in FOLLOW flows through includes on the classic grammar's
        // *ambiguous cousin* where it conflicts:
        //   s : l "=" r | r ; l : "*" r | "id" ; r : l | r "q" ;
        // (adding r-recursion to force a conflict keeps the chain visible)
        let texts = explain_all("e : e \"+\" e | \"x\" ;");
        assert_eq!(texts.len(), 1);
        assert!(texts[0].contains("directly readable"), "{}", texts[0]);
    }
}
