//! Regenerates the golden fixture used by the `generated_parser` test.
//!
//! ```text
//! cargo run -p lalr-codegen --example generate_fixture
//! ```

use lalr_automata::Lr0Automaton;
use lalr_codegen::generate_module;
use lalr_core::LalrAnalysis;
use lalr_tables::{build_table, TableOptions};

fn main() {
    let grammar = lalr_corpus::by_name("expr")
        .expect("corpus has expr")
        .grammar();
    let lr0 = Lr0Automaton::build(&grammar);
    let la = LalrAnalysis::compute(&grammar, &lr0).into_lookaheads();
    let table = build_table(&grammar, &lr0, &la, TableOptions::default());
    let source = generate_module(&table, "expr_parser");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/expr_parser.rs");
    std::fs::write(path, &source).expect("write fixture");
    println!("wrote {path} ({} bytes)", source.len());
}
