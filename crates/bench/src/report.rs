//! Paper-style table/figure rendering (the `report` binary's engine).

use std::fmt::Write as _;

use lalr_automata::{Lr0Automaton, Lr1Automaton};
use lalr_core::{classify, LalrAnalysis, Relations};
use lalr_corpus::synthetic;
use lalr_grammar::GrammarStats;

use crate::methods::{median_time, Method};

/// Table 1 — grammar and relation characteristics per corpus grammar.
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1: grammar characteristics and DeRemer-Pennello relation sizes"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>4} {:>4} {:>5} {:>5} {:>7} {:>8} {:>7} {:>9} {:>9}",
        "grammar", "|T|", "|N|", "|P|", "|G|", "states", "nttrans", "reads", "includes", "lookback"
    );
    for entry in lalr_corpus::all_entries() {
        let g = entry.grammar();
        let stats = GrammarStats::compute(&g);
        let lr0 = Lr0Automaton::build(&g);
        let rel = Relations::build(&g, &lr0);
        let rs = rel.stats();
        let _ = writeln!(
            out,
            "{:<16} {:>4} {:>4} {:>5} {:>5} {:>7} {:>8} {:>7} {:>9} {:>9}",
            entry.name,
            stats.terminals,
            stats.nonterminals,
            stats.productions,
            stats.size,
            lr0.state_count(),
            rs.nt_transitions,
            rs.reads_edges,
            rs.includes_edges,
            rs.lookback_edges,
        );
    }
    out
}

/// Table 2 — look-ahead computation time per method (medians over `runs`),
/// plus the LR(1) state explosion column.
pub fn table2(runs: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2: look-ahead computation time (median of {runs} runs; LR(0) machine prebuilt)"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>11} {:>11} {:>11} {:>11} {:>9} {:>9}",
        "grammar", "DP", "yacc-prop", "LR1-merge", "SLR", "NQLALR", "lr0-st", "lr1-st"
    );
    for entry in lalr_corpus::all_entries() {
        let g = entry.grammar();
        let lr0 = Lr0Automaton::build(&g);
        let lr1_states = Lr1Automaton::build(&g).state_count();
        let mut cells: Vec<String> = Vec::new();
        for m in Method::ALL {
            let d = median_time(m, &g, &lr0, runs);
            cells.push(format!("{:.1}us", d.as_secs_f64() * 1e6));
        }
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>11} {:>11} {:>11} {:>11} {:>9} {:>9}",
            entry.name,
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4],
            lr0.state_count(),
            lr1_states,
        );
    }
    let _ = writeln!(
        out,
        "(expected shape: DP < yacc-prop << LR1-merge; SLR cheapest but inadequate below)"
    );
    out
}

/// Table 3 — the adequacy hierarchy: conflicts per method and the
/// resulting classification.
pub fn table3() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3: conflicts per method and grammar class");
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>6} {:>8} {:>6} {:>6} {:>8} {:<10}",
        "grammar", "LR(0)", "SLR", "NQLALR", "LALR", "LR(1)", "reads-cy", "class"
    );
    for entry in lalr_corpus::all_entries() {
        let g = entry.grammar();
        let m = classify(&g);
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>6} {:>8} {:>6} {:>6} {:>8} {:<10}",
            entry.name,
            m.lr0_conflicts,
            m.slr_conflicts,
            m.nqlalr_conflicts,
            m.lalr_conflicts,
            m.lr1_conflicts,
            if m.not_lr_k { "yes" } else { "-" },
            m.class.to_string(),
        );
    }
    let _ = writeln!(
        out,
        "(NQLALR > LALR on nqlalr_witness is the paper's unsoundness warning)"
    );
    out
}

/// Figure 1 — scaling sweep: method time and state counts vs grammar size
/// over the `expr_ladder` family.
pub fn figure1(runs: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 1: scaling over expr_ladder(n) (median of {runs} runs)"
    );
    let _ = writeln!(
        out,
        "{:>4} {:>6} {:>8} {:>10} {:>12} {:>12} {:>9}",
        "n", "prods", "lr0-st", "DP", "yacc-prop", "LR1-merge", "lr1-st"
    );
    for n in [2usize, 5, 10, 20, 40, 80] {
        let g = synthetic::expr_ladder(n);
        let lr0 = Lr0Automaton::build(&g);
        let lr1_states = Lr1Automaton::build(&g).state_count();
        let dp = median_time(Method::DeRemerPennello, &g, &lr0, runs);
        let prop = median_time(Method::Propagation, &g, &lr0, runs);
        let merge = median_time(Method::Lr1Merge, &g, &lr0, runs);
        let _ = writeln!(
            out,
            "{:>4} {:>6} {:>8} {:>9.1}us {:>11.1}us {:>11.1}us {:>9}",
            n,
            g.production_count() - 1,
            lr0.state_count(),
            dp.as_secs_f64() * 1e6,
            prop.as_secs_f64() * 1e6,
            merge.as_secs_f64() * 1e6,
            lr1_states,
        );
    }
    out
}

/// Figure 2 — structure of the `reads`/`includes` relations across the
/// corpus (SCC counts, the non-LR(k) cycle detector).
pub fn figure2() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 2: relation structure (Digraph SCC statistics)");
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "grammar", "nttrans", "reads-scc", "incl-scc>1", "incl-maxscc", "not-LR(k)"
    );
    for entry in lalr_corpus::all_entries() {
        let g = entry.grammar();
        let lr0 = Lr0Automaton::build(&g);
        let a = LalrAnalysis::compute(&g, &lr0);
        let rs = a.relation_stats();
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>10} {:>12} {:>12} {:>10}",
            entry.name,
            rs.nt_transitions,
            rs.reads_nontrivial_sccs,
            rs.includes_nontrivial_sccs,
            rs.includes_max_scc,
            if a.grammar_not_lr_k() { "yes" } else { "-" },
        );
    }
    out
}

/// Table 4 — ablation summary (E6/E7/E8): Digraph vs naive closure,
/// bit-set vs hash-set store, full vs selective traversal.
pub fn table4(runs: usize) -> String {
    use lalr_digraph::{digraph, digraph_from_on, naive_closure, UnionSets};
    use std::collections::HashSet;
    use std::time::Instant;

    struct HashStore {
        sets: Vec<HashSet<usize>>,
    }
    impl UnionSets for HashStore {
        fn union(&mut self, dst: usize, src: usize) {
            if dst == src {
                return;
            }
            let (a, b) = if dst < src {
                let (lo, hi) = self.sets.split_at_mut(src);
                (&mut lo[dst], &hi[0])
            } else {
                let (lo, hi) = self.sets.split_at_mut(dst);
                (&mut hi[0], &lo[src])
            };
            a.extend(b.iter().copied());
        }
        fn assign(&mut self, dst: usize, src: usize) {
            if dst == src {
                return;
            }
            let copied = self.sets[src].clone();
            self.sets[dst] = copied;
        }
    }

    fn median<F: FnMut() -> std::time::Duration>(runs: usize, mut f: F) -> f64 {
        let mut v: Vec<_> = (0..runs.max(1)).map(|_| f()).collect();
        v.sort_unstable();
        v[v.len() / 2].as_secs_f64() * 1e6
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 4: ablations on the Follow computation (median of {runs} runs, us)"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>9} {:>9} {:>9} {:>10} {:>10} {:>8}",
        "grammar", "digraph", "naive", "hashset", "full-LA", "select-LA", "skip%"
    );
    for name in [
        "expr",
        "json",
        "lua_subset",
        "pascal",
        "ada_subset",
        "sql_subset",
        "c_subset",
    ] {
        let g = lalr_corpus::by_name(name).expect("exists").grammar();
        let lr0 = Lr0Automaton::build(&g);
        let rel = Relations::build(&g, &lr0);
        let mut read = rel.dr().clone();
        digraph(rel.reads(), &mut read);

        let t_digraph = median(runs, || {
            let mut sets = read.clone();
            let t0 = Instant::now();
            digraph(rel.includes(), &mut sets);
            let d = t0.elapsed();
            std::hint::black_box(sets);
            d
        });
        let t_naive = median(runs, || {
            let mut sets = read.clone();
            let t0 = Instant::now();
            naive_closure(rel.includes(), &mut sets);
            let d = t0.elapsed();
            std::hint::black_box(sets);
            d
        });
        let t_hash = median(runs, || {
            let mut store = HashStore {
                sets: (0..read.rows())
                    .map(|r| read.iter_row(r).collect())
                    .collect(),
            };
            let t0 = Instant::now();
            digraph_from_on(rel.includes(), &mut store, 0..read.rows());
            let d = t0.elapsed();
            std::hint::black_box(store.sets.len());
            d
        });
        let t_full = median(runs, || {
            let t0 = Instant::now();
            let la = lalr_core::LalrAnalysis::compute(&g, &lr0).into_lookaheads();
            let d = t0.elapsed();
            std::hint::black_box(la);
            d
        });
        let sel = lalr_core::selective_lookaheads(&g, &lr0);
        let skip = sel.skipped_fraction() * 100.0;
        let t_sel = median(runs, || {
            let t0 = Instant::now();
            let la = lalr_core::selective_lookaheads(&g, &lr0).into_lookaheads();
            let d = t0.elapsed();
            std::hint::black_box(la);
            d
        });
        let _ = writeln!(
            out,
            "{:<16} {:>9.1} {:>9.1} {:>9.1} {:>10.1} {:>10.1} {:>7.0}%",
            name, t_digraph, t_naive, t_hash, t_full, t_sel, skip
        );
    }
    out
}

/// Table 5 — parse table sizes: dense occupancy vs default-reduction
/// compression (the classic yacc space argument).
pub fn table5() -> String {
    use lalr_tables::{build_table, CompressedTable, TableOptions};

    let mut out = String::new();
    let _ = writeln!(out, "Table 5: ACTION table size, dense vs compressed");
    let _ = writeln!(
        out,
        "{:<16} {:>7} {:>7} {:>10} {:>11} {:>7}",
        "grammar", "states", "terms", "dense-ent", "compressed", "ratio"
    );
    for entry in lalr_corpus::all_entries() {
        let g = entry.grammar();
        let lr0 = Lr0Automaton::build(&g);
        let la = lalr_core::LalrAnalysis::compute(&g, &lr0).into_lookaheads();
        let table = build_table(&g, &lr0, &la, TableOptions::default());
        let stats = table.stats();
        let compressed = CompressedTable::from_dense(&table);
        let ratio = if stats.action_entries > 0 {
            compressed.explicit_entries() as f64 / stats.action_entries as f64
        } else {
            1.0
        };
        let _ = writeln!(
            out,
            "{:<16} {:>7} {:>7} {:>10} {:>11} {:>6.2}x",
            entry.name,
            stats.states,
            stats.terminals,
            stats.action_entries,
            compressed.explicit_entries(),
            ratio
        );
    }
    out
}

/// Allocation counts of the cold DP pipeline *before* the dense-layout
/// overhaul (hash-keyed `LookaheadSets`, map-backed lookback, cloning
/// LR(0) interner), recorded with `alloc_probe` on this corpus at the
/// commit preceding the overhaul. Kept as constants so Table 7 can print
/// an honest before/after column without rebuilding old code.
const TABLE7_BASELINE: &[(&str, usize, usize)] = &[
    // (grammar, allocations, bytes) — cold `grammar → LA sets`, DP method.
    ("expr", 265, 14_291),
    ("json", 524, 35_415),
    ("lua_subset", 6_424, 538_608),
    ("pascal", 4_398, 348_413),
    ("algol60", 4_976, 411_727),
    ("ada_subset", 7_702, 726_667),
    ("tiny_java", 6_818, 551_484),
    ("sql_subset", 6_318, 552_785),
    ("c_subset", 12_838, 1_215_140),
];

/// Table 7 — memory behaviour of the cold pipeline (E11): allocation
/// count/bytes of `grammar → LR(0) → LA` per corpus grammar, the DP
/// method measured live against the recorded pre-overhaul baseline, plus
/// live per-method allocation counts and wall-clock.
pub fn table7() -> String {
    use crate::alloc_counter::measure;
    use lalr_automata::Lr0Automaton;
    use std::time::Instant;

    let cold = |name: &str, method: Method| {
        let entry = lalr_corpus::by_name(name).expect("corpus entry exists");
        let t0 = Instant::now();
        let ((), stats) = measure(|| {
            let g = entry.grammar();
            let lr0 = Lr0Automaton::build(&g);
            let la = method.run(&g, &lr0);
            std::hint::black_box(la.total_bits());
        });
        (stats, t0.elapsed())
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 7: cold-pipeline allocations (grammar -> LA sets), dense-layout overhaul"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>10} {:>7} {:>11} {:>11} {:>7}",
        "grammar (DP)", "alloc-pre", "alloc-now", "d%", "bytes-pre", "bytes-now", "d%"
    );
    for &(name, pre_allocs, pre_bytes) in TABLE7_BASELINE {
        let (stats, _) = cold(name, Method::DeRemerPennello);
        let da = 100.0 * (1.0 - stats.allocations as f64 / pre_allocs as f64);
        let db = 100.0 * (1.0 - stats.bytes as f64 / pre_bytes as f64);
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>10} {:>6.0}% {:>11} {:>11} {:>6.0}%",
            name, pre_allocs, stats.allocations, da, pre_bytes, stats.bytes, db
        );
    }
    let _ = writeln!(
        out,
        "(alloc-pre/bytes-pre: recorded before the overhaul; now: measured live)"
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "per-method cold pipeline, this build:");
    let _ = writeln!(
        out,
        "{:<16} {:>16} {:>12} {:>14} {:>10}",
        "grammar", "method", "allocations", "bytes", "time"
    );
    for name in ["expr", "json", "pascal", "ada_subset", "c_subset"] {
        for method in Method::ALL {
            let (stats, elapsed) = cold(name, method);
            let _ = writeln!(
                out,
                "{:<16} {:>16} {:>12} {:>14} {:>8.1}us",
                name,
                method.label(),
                stats.allocations,
                stats.bytes,
                elapsed.as_secs_f64() * 1e6
            );
        }
    }
    out
}

/// Table 9 — per-phase time breakdown of the three LALR(1)-exact methods
/// (E13): each cell is one cold run under a [`lalr_obs::CollectingRecorder`],
/// with the phase spans the pipeline emits (DP and propagation) or the
/// harness wraps around the two LR(1)-merge stages.
pub fn table9() -> String {
    use lalr_automata::merge_lr1;
    use lalr_core::{propagation_recorded, LookaheadSets, Parallelism};
    use lalr_obs::{CollectingRecorder, PhaseReport};
    use std::time::{Duration, Instant};

    fn row(out: &mut String, grammar: &str, method: &str, total: Duration, report: &PhaseReport) {
        let phases: Vec<String> = report
            .phases
            .iter()
            .map(|p| format!("{}={:.1}", p.name, p.total_ns as f64 / 1e3))
            .collect();
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>8.1}  {}",
            grammar,
            method,
            total.as_secs_f64() * 1e6,
            phases.join(" ")
        );
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 9: per-phase time breakdown (one cold run per method; all times us)"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>8}  phase=us ...",
        "grammar", "method", "total"
    );
    for entry in lalr_corpus::all_entries() {
        let g = entry.grammar();
        let lr0 = Lr0Automaton::build(&g);

        let rec = CollectingRecorder::new();
        let t0 = Instant::now();
        let la = LalrAnalysis::compute_recorded(&g, &lr0, &Parallelism::sequential(), &rec)
            .into_lookaheads();
        let total = t0.elapsed();
        std::hint::black_box(la);
        row(&mut out, entry.name, "DP", total, &rec.report());

        let rec = CollectingRecorder::new();
        let t0 = Instant::now();
        let la = propagation_recorded(&g, &lr0, &rec);
        let total = t0.elapsed();
        std::hint::black_box(la);
        row(&mut out, entry.name, "yacc-prop", total, &rec.report());

        let rec = CollectingRecorder::new();
        let t0 = Instant::now();
        let lr1 = {
            let _span = lalr_obs::span(&rec, "lr1.build");
            Lr1Automaton::build(&g)
        };
        let la = {
            let _span = lalr_obs::span(&rec, "lr1.merge");
            LookaheadSets::from(&merge_lr1(&g, &lr1, &lr0))
        };
        let total = t0.elapsed();
        std::hint::black_box(la);
        row(&mut out, entry.name, "LR1-merge", total, &rec.report());
    }
    let _ = writeln!(
        out,
        "(DP phases: relation construction, two Digraph traversals, LA union; \
         propagation: closures, fixpoint, emission; LR1-merge: machine build, merge)"
    );
    out
}

/// Cold c_subset DP pipeline wall-clock (grammar → LR(0) → LA sets), in
/// microseconds, recorded immediately before the bitset kernel substrate
/// landed: four cold runs on the project's 1-vCPU reference host. Kept as
/// constants so Table 12 can print an honest before/after column without
/// rebuilding old code.
const TABLE12_COLD_BASELINE_US: [f64; 4] = [1102.9, 1174.9, 1196.2, 1258.4];

/// Rows per kernel timing loop; sized so a w=8 working set (2 × 2048 × 64 B
/// = 256 KiB) spills L2 the way real LA matrices do.
const TABLE12_ROWS: usize = 2048;

/// Passes over the working set per kernel measurement.
const TABLE12_REPS: usize = 16;

/// Estimates the CPU clock by timing a latency-bound dependent
/// rotate-xor chain: `rol` and `xor` each have single-cycle latency on
/// every x86-64 and aarch64 core this project targets, and the chain is
/// a GF(2) recurrence no compiler folds, so one iteration is two cycles.
/// Clamped to a sane range so a preempted calibration run cannot produce
/// absurd cycles/row figures.
fn estimated_ghz() -> f64 {
    use std::time::Instant;
    const ITERS: u64 = 8_000_000;
    const CHAIN_LATENCY_CYCLES: f64 = 2.0;
    let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        x = x.rotate_left(1) ^ 0x2545_f491_4f6c_dd1d;
    }
    let ns = t0.elapsed().as_nanos().max(1) as f64;
    std::hint::black_box(x);
    (ITERS as f64 * CHAIN_LATENCY_CYCLES / ns).clamp(0.5, 6.0)
}

/// Times one kernel over a randomized row working set; returns ns/row.
/// `per_call_rows` divides the figure for kernels that touch several
/// logical rows per invocation (e.g. the blocked accumulator).
fn bench_kernel_rows<F>(words: usize, per_call_rows: usize, mut op: F) -> f64
where
    F: FnMut(&mut [usize], &[usize]),
{
    use std::time::Instant;
    // Deterministic xorshift so reruns time identical bit patterns.
    let mut state: u64 = 0x1234_5678_9abc_def0 ^ (words as u64).wrapping_mul(0xff51_afd7);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state as usize
    };
    let srcs: Vec<Vec<usize>> = (0..TABLE12_ROWS)
        .map(|_| (0..words).map(|_| next()).collect())
        .collect();
    let mut dsts: Vec<Vec<usize>> = (0..TABLE12_ROWS)
        .map(|_| (0..words).map(|_| next()).collect())
        .collect();
    // Best of three passes: on the project's 1-vCPU reference host a
    // single pass is one scheduler preemption away from a 10x outlier
    // cell; the minimum is the least-disturbed estimate of the kernel.
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..TABLE12_REPS {
            for (dst, src) in dsts.iter_mut().zip(&srcs) {
                op(dst, src);
            }
        }
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    std::hint::black_box(&dsts);
    best / (TABLE12_ROWS * TABLE12_REPS * per_call_rows) as f64
}

/// Table 12 — the bitset kernel substrate (E16): per-kernel ns/row and
/// estimated cycles/row at the row widths the corpus actually selects
/// (w=1 fixed-64, w=2 fixed-128) plus wider multi-word rows, the wide-lane
/// dispatch this build resolved, and the cold c_subset DP pipeline
/// measured live against the recorded pre-substrate baseline.
pub fn table12() -> String {
    use crate::alloc_counter::measure;
    use lalr_automata::Lr0Automaton;
    use lalr_bitset::kernels;
    use std::time::Instant;

    let ghz = estimated_ghz();
    let mut out = String::new();
    let _ = writeln!(out, "Table 12: bitset kernel cycles/row (E16)");
    let _ = writeln!(
        out,
        "wide lane: {} (simd compiled: {}); est. clock {:.2} GHz (rotate-xor chain calibration)",
        lalr_bitset::dispatch_name(),
        if lalr_bitset::simd_compiled() {
            "yes"
        } else {
            "no"
        },
        ghz,
    );
    let _ = writeln!(
        out,
        "{:<14} {:>15} {:>15} {:>15} {:>15}",
        "kernel", "w=1", "w=2", "w=4", "w=8"
    );
    type KernelRow = (&'static str, fn(usize) -> f64);
    let kernel_rows: &[KernelRow] = &[
        ("or", |w| {
            bench_kernel_rows(w, 1, |d, s| {
                std::hint::black_box(kernels::or_into(d, s));
            })
        }),
        ("or-assign", |w| bench_kernel_rows(w, 1, kernels::or_assign)),
        ("masked-or", |w| {
            let mask: Vec<usize> = (0..w).map(|i| usize::MAX >> (i % 3)).collect();
            bench_kernel_rows(w, 1, move |d, s| {
                std::hint::black_box(kernels::masked_or(d, s, &mask));
            })
        }),
        ("copy", |w| bench_kernel_rows(w, 1, kernels::copy)),
        ("popcount", |w| {
            bench_kernel_rows(w, 1, |d, s| {
                std::hint::black_box(kernels::popcount(d) + kernels::popcount(s));
            })
        }),
        ("or-acc(8)", |w| {
            // One call unions 8 source rows into dst; report per source row
            // so the column is comparable with the pairwise `or` kernel.
            let extra: Vec<Vec<usize>> = (0..7)
                .map(|i| vec![0x5555_5555_5555_5555usize.rotate_left(i); w])
                .collect();
            bench_kernel_rows(w, 8, move |d, s| {
                let mut srcs: Vec<&[usize]> = Vec::with_capacity(8);
                srcs.push(s);
                srcs.extend(extra.iter().map(Vec::as_slice));
                std::hint::black_box(kernels::or_accumulate(d, &srcs));
            })
        }),
    ];
    for (name, run) in kernel_rows {
        let mut cells: Vec<String> = Vec::new();
        for w in [1usize, 2, 4, 8] {
            let ns = run(w);
            cells.push(format!("{:>6.2}ns {:>4.1}cy", ns, ns * ghz));
        }
        let _ = writeln!(
            out,
            "{:<14} {:>15} {:>15} {:>15} {:>15}",
            name, cells[0], cells[1], cells[2], cells[3]
        );
    }
    let _ = writeln!(
        out,
        "(popcount row times two rows per call: both operand rows are counted)"
    );

    let _ = writeln!(out);
    let _ = writeln!(out, "cold c_subset DP pipeline (grammar -> LA sets):");
    let entry = lalr_corpus::by_name("c_subset").expect("corpus entry exists");
    let cold_run = || {
        let t0 = Instant::now();
        let ((), _stats) = measure(|| {
            let g = entry.grammar();
            let lr0 = Lr0Automaton::build(&g);
            let la = Method::DeRemerPennello.run(&g, &lr0);
            std::hint::black_box(la.total_bits());
        });
        t0.elapsed().as_secs_f64() * 1e6
    };
    cold_run(); // warm-up: fault in code and corpus text
    let mut live_us: Vec<f64> = (0..9).map(|_| cold_run()).collect();
    live_us.sort_by(f64::total_cmp);
    let live = live_us[live_us.len() / 2];
    let base = TABLE12_COLD_BASELINE_US[TABLE12_COLD_BASELINE_US.len() / 2];
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>12} {:>7}",
        "", "pre-kernel", "this build", "delta"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>10.1}us {:>10.1}us {:>6.1}%",
        "median of runs",
        base,
        live,
        100.0 * (1.0 - live / base),
    );
    let _ = writeln!(
        out,
        "(baseline recorded pre-substrate on the same 1-vCPU host; single-vCPU \
         wall-clock is noisy -- treat deltas within ~10% as noise)"
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_has_a_row_per_corpus_entry() {
        let t = super::table1();
        for e in lalr_corpus::all_entries() {
            assert!(t.contains(e.name), "{} missing", e.name);
        }
    }

    #[test]
    fn table3_flags_the_witness_and_the_cycle() {
        let t = super::table3();
        let witness_row = t
            .lines()
            .find(|l| l.starts_with("nqlalr_witness"))
            .expect("witness row");
        assert!(witness_row.contains("LALR(1)"));
        let cycle_row = t
            .lines()
            .find(|l| l.starts_with("reads_cycle"))
            .expect("cycle row");
        assert!(cycle_row.contains("yes"));
    }

    #[test]
    fn figure1_is_well_formed() {
        // One warm-up-free run to keep tests fast.
        let f = super::figure1(1);
        assert_eq!(f.lines().count(), 2 + 6);
    }

    #[test]
    fn figure2_marks_only_the_cyclic_grammar() {
        let f = super::figure2();
        let yes_rows: Vec<&str> = f
            .lines()
            .filter(|l| l.trim_end().ends_with("yes"))
            .collect();
        assert_eq!(yes_rows.len(), 1);
        assert!(yes_rows[0].starts_with("reads_cycle"));
    }

    #[test]
    fn table4_reports_skip_percentages() {
        let t = super::table4(1);
        assert!(t.contains("skip%"));
        assert!(t.lines().count() >= 8);
    }

    #[test]
    fn table7_reports_every_baseline_grammar_and_method() {
        let t = super::table7();
        for &(name, _, _) in super::TABLE7_BASELINE {
            assert!(t.contains(name), "{name} missing from table 7");
        }
        for m in super::Method::ALL {
            assert!(t.contains(m.label()), "{} missing from table 7", m.label());
        }
    }

    #[test]
    fn table9_reports_phases_for_every_method_and_grammar() {
        let t = super::table9();
        for e in lalr_corpus::all_entries() {
            assert!(t.contains(e.name), "{} missing from table 9", e.name);
        }
        for phase in [
            "relations.build=",
            "digraph.reads=",
            "digraph.includes=",
            "la.union=",
            "prop.closure=",
            "prop.fixpoint=",
            "prop.emit=",
            "lr1.build=",
            "lr1.merge=",
        ] {
            assert!(t.contains(phase), "{phase} missing from table 9");
        }
    }

    #[test]
    fn table12_reports_every_kernel_and_the_cold_pipeline() {
        let t = super::table12();
        for kernel in [
            "or",
            "or-assign",
            "masked-or",
            "copy",
            "popcount",
            "or-acc(8)",
        ] {
            assert!(t.contains(kernel), "{kernel} missing from table 12");
        }
        assert!(t.contains("wide lane:"), "dispatch line missing");
        assert!(
            t.contains("cold c_subset DP pipeline"),
            "cold section missing"
        );
        assert!(t.contains("pre-kernel"), "baseline column missing");
        // The dispatch named must agree with how this test binary was built.
        if lalr_bitset::simd_compiled() {
            assert!(t.contains("simd compiled: yes"));
        } else {
            assert!(t.contains("wide lane: scalar-unrolled"));
        }
    }

    #[test]
    fn table5_compression_never_grows() {
        let t = super::table5();
        for line in t.lines().skip(2) {
            let ratio: f64 = line
                .split_whitespace()
                .last()
                .and_then(|s| s.trim_end_matches('x').parse().ok())
                .expect("ratio column");
            assert!(ratio <= 1.0, "{line}");
        }
    }
}
