//! Grammar statistics (the grammar columns of evaluation Table 1).

use crate::analysis::{
    left_recursive_nonterminals, nullable, productive_nonterminals, reachable_symbols,
};
use crate::grammar::Grammar;

/// Structural statistics of a grammar, excluding the reserved augmentation
/// symbols so the numbers describe the *user's* grammar the way the paper's
/// Table 1 does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrammarStats {
    /// User terminals (`$` excluded).
    pub terminals: usize,
    /// User nonterminals (`<start>` excluded).
    pub nonterminals: usize,
    /// User productions (the augmentation excluded).
    pub productions: usize,
    /// Sum of RHS lengths over user productions.
    pub size: usize,
    /// Longest RHS.
    pub max_rhs_len: usize,
    /// ε-productions.
    pub epsilon_productions: usize,
    /// Nullable user nonterminals.
    pub nullable_nonterminals: usize,
    /// Left-recursive user nonterminals.
    pub left_recursive: usize,
    /// Unreachable or unproductive user nonterminals.
    pub useless_nonterminals: usize,
}

impl GrammarStats {
    /// Computes all statistics for `grammar`.
    ///
    /// # Examples
    ///
    /// ```
    /// use lalr_grammar::{parse_grammar, GrammarStats};
    ///
    /// let g = parse_grammar("e : e \"+\" t | t ; t : \"x\" ;")?;
    /// let s = GrammarStats::compute(&g);
    /// assert_eq!((s.terminals, s.nonterminals, s.productions), (2, 2, 3));
    /// assert_eq!(s.left_recursive, 1);
    /// # Ok::<(), lalr_grammar::GrammarError>(())
    /// ```
    pub fn compute(grammar: &Grammar) -> GrammarStats {
        let nullable = nullable(grammar);
        let productive = productive_nonterminals(grammar);
        let reachable = reachable_symbols(grammar);
        let left_rec = left_recursive_nonterminals(grammar, &nullable);

        let user_prods = || grammar.iter_productions().skip(1).map(|(_, p)| p);

        GrammarStats {
            terminals: grammar.terminal_count() - 1,
            nonterminals: grammar.nonterminal_count() - 1,
            productions: grammar.production_count() - 1,
            size: user_prods().map(|p| p.len()).sum(),
            max_rhs_len: user_prods().map(|p| p.len()).max().unwrap_or(0),
            epsilon_productions: user_prods().filter(|p| p.is_empty()).count(),
            nullable_nonterminals: grammar
                .nonterminals()
                .filter(|nt| !nt.is_augmented_start() && nullable.contains(*nt))
                .count(),
            left_recursive: left_rec
                .iter()
                .filter(|nt| !nt.is_augmented_start())
                .count(),
            useless_nonterminals: grammar
                .nonterminals()
                .filter(|&nt| {
                    !nt.is_augmented_start()
                        && (!productive.contains(nt.index()) || !reachable.nonterminal(nt))
                })
                .count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_grammar;

    #[test]
    fn stats_of_clean_grammar() {
        let g = parse_grammar(
            r#"
            e : e "+" t | t ;
            t : t "*" f | f ;
            f : "(" e ")" | "id" ;
            "#,
        )
        .unwrap();
        let s = GrammarStats::compute(&g);
        assert_eq!(s.terminals, 5);
        assert_eq!(s.nonterminals, 3);
        assert_eq!(s.productions, 6);
        assert_eq!(s.size, 3 + 1 + 3 + 1 + 3 + 1);
        assert_eq!(s.max_rhs_len, 3);
        assert_eq!(s.epsilon_productions, 0);
        assert_eq!(s.nullable_nonterminals, 0);
        assert_eq!(s.left_recursive, 2);
        assert_eq!(s.useless_nonterminals, 0);
    }

    #[test]
    fn stats_count_epsilon_and_useless() {
        let g = parse_grammar("s : a | ; a : \"x\" ; dead : dead \"y\" ;").unwrap();
        let s = GrammarStats::compute(&g);
        assert_eq!(s.epsilon_productions, 1);
        assert_eq!(s.nullable_nonterminals, 1);
        assert_eq!(s.useless_nonterminals, 1);
    }

    #[test]
    fn empty_rhs_only_grammar() {
        let g = parse_grammar("s : ;").unwrap();
        let s = GrammarStats::compute(&g);
        assert_eq!(s.max_rhs_len, 0);
        assert_eq!(s.size, 0);
        assert_eq!(s.terminals, 0);
    }
}
