//! Vendored offline shim for the subset of `criterion` this workspace uses.
//!
//! The build environment has no network access, so the real `criterion`
//! crate cannot be downloaded. This shim implements the same bench-harness
//! surface (`criterion_group!`/`criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `Throughput`) with a
//! real wall-clock measurement loop: warm-up, iteration-count calibration,
//! then `sample_size` samples whose per-iteration median/mean/min are
//! printed in a `group/function/param  time: […]` line. Statistical
//! analysis (outlier detection, regressions, HTML reports) is out of
//! scope; the numbers are honest medians and are what `EXPERIMENTS.md`
//! records.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a free argument;
        // flags criterion would understand (e.g. `--bench`) are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            filter,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, measurement_time, warm_up_time) =
            (self.sample_size, self.measurement_time, self.warm_up_time);
        self.run_one(name, sample_size, measurement_time, warm_up_time, &mut f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one<F>(
        &mut self,
        id: &str,
        sample_size: usize,
        measurement_time: Duration,
        warm_up_time: Duration,
        f: &mut F,
    ) where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(id) {
            return;
        }
        let mut bencher = Bencher {
            mode: Mode::WarmUp {
                until: warm_up_time,
            },
            iters_per_sample: 1,
            samples: Vec::new(),
        };
        // Warm-up pass: runs the closure until `warm_up_time` has elapsed
        // and calibrates how many iterations fit in one sample.
        f(&mut bencher);
        let per_sample = measurement_time.as_nanos() as u64 / sample_size.max(1) as u64;
        bencher.iters_per_sample = match bencher.samples.first() {
            Some(&warm) if warm.as_nanos() > 0 => {
                (per_sample / warm.as_nanos() as u64).clamp(1, 1_000_000)
            }
            _ => 1_000,
        };
        bencher.samples.clear();
        bencher.mode = Mode::Measure {
            samples: sample_size,
        };
        f(&mut bencher);

        let mut per_iter: Vec<f64> = bencher
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / bencher.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{id:<48} time: [min {} median {} mean {}]  ({} samples x {} iters)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            per_iter.len(),
            bencher.iters_per_sample,
        );
    }

    /// No-op, kept for API compatibility.
    pub fn final_summary(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named benchmark group with its own sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Records the throughput denominator (accepted, not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let (s, m, w) = (self.sample_size, self.measurement_time, self.warm_up_time);
        self.criterion.run_one(&full, s, m, w, &mut |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let (s, m, w) = (self.sample_size, self.measurement_time, self.warm_up_time);
        self.criterion.run_one(&full, s, m, w, &mut f);
        self
    }

    /// Ends the group (printing happens eagerly; this is for API parity).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Throughput denominators (accepted for API parity, not reported).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

enum Mode {
    WarmUp { until: Duration },
    Measure { samples: usize },
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    mode: Mode,
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match self.mode {
            Mode::WarmUp { until } => {
                // Run at least once; record the single-iteration time so
                // the harness can calibrate the sample batch size.
                let deadline = Instant::now() + until;
                let t0 = Instant::now();
                black_box(routine());
                let first = t0.elapsed();
                self.samples.push(first);
                while Instant::now() < deadline {
                    black_box(routine());
                }
            }
            Mode::Measure { samples } => {
                for _ in 0..samples {
                    let t0 = Instant::now();
                    for _ in 0..self.iters_per_sample {
                        black_box(routine());
                    }
                    self.samples.push(t0.elapsed());
                }
            }
        }
    }
}

/// Declares a bench group entry point, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_cheap_closure() {
        let mut c = Criterion {
            sample_size: 5,
            measurement_time: Duration::from_millis(50),
            warm_up_time: Duration::from_millis(5),
            filter: None,
        };
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_size: 5,
            measurement_time: Duration::from_millis(50),
            warm_up_time: Duration::from_millis(5),
            filter: Some("only-this".into()),
        };
        let mut ran = false;
        c.bench_function("something-else", |b| b.iter(|| ran = true));
        assert!(!ran);
    }

    #[test]
    fn format_scales_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
    }
}
