//! Level-scheduled parallel variant of the Digraph traversal.
//!
//! The sequential [`digraph`](crate::digraph) walks the relation in one
//! DFS. That walk is inherently serial, but the *closure it computes* is
//! not: `F(x)` is exactly the union of the initial sets of every node
//! reachable from `x`, which factors through the condensation. This module
//! exploits that:
//!
//! 1. Run [`tarjan_scc`] and condense the relation to a DAG of components.
//! 2. Assign each component a **level**: `0` for sinks, otherwise `1 +`
//!    the maximum level of its successor components. Tarjan numbers
//!    components in reverse topological order, so one ascending-id pass
//!    computes all levels.
//! 3. Process levels bottom-up. All components in a level are mutually
//!    unreachable (an inter-component edge strictly decreases the level),
//!    so a level is a parallel frontier: worker threads split its
//!    components round-robin, each unioning its components' rows in an
//!    [`AtomicBitMatrix`] and scattering the result to every member.
//!    A [`Barrier`] separates levels.
//!
//! Threads are spawned **once** per run (not once per level); the barrier
//! is the only per-level synchronization, so level count — not thread
//! spawn latency — bounds the critical path. [`digraph_levels`] is also
//! adaptive: a schedule too narrow to feed every worker (a long chain, a
//! tiny grammar) is handed to the sequential traversal instead of paying
//! spawn and barrier costs for no parallelism.
//!
//! Because the computed closure is the same mathematical object, the
//! resulting matrix is bit-identical to the sequential traversal's, and
//! the returned [`DigraphStats`] (derived from the SCC structure) agree
//! with a full sequential run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use lalr_bitset::{tile_rows, AtomicBitMatrix, BitMatrix, RowBuf};
use lalr_obs::Recorder;

use crate::{digraph, digraph_counting, tarjan_scc, DigraphStats, Graph, SccInfo, TraversalCounts};

/// The condensation of a relation leveled into parallel frontiers.
///
/// Level `0` holds the sink components; every inter-component edge goes
/// from a higher level to a strictly lower one. Components within one
/// level are mutually unreachable and may be processed concurrently.
#[derive(Debug, Clone)]
pub struct LevelSchedule {
    scc: SccInfo,
    /// Component ids grouped by level, ascending.
    levels: Vec<Vec<u32>>,
    /// Members of every component, indexed by component id.
    members: Vec<Vec<usize>>,
}

impl LevelSchedule {
    /// Builds the schedule for `graph`.
    pub fn of(graph: &Graph) -> Self {
        let scc = tarjan_scc(graph);
        let count = scc.count();
        let mut comp_succs: Vec<Vec<u32>> = vec![Vec::new(); count];
        for (u, v) in graph.edges() {
            let (cu, cv) = (scc.component(u), scc.component(v));
            if cu != cv {
                comp_succs[cu].push(cv as u32);
            }
        }
        // Ascending component id = reverse topological order: every
        // successor component has a smaller id, so its level is already
        // final when the component is reached.
        let mut level = vec![0u32; count];
        for c in 0..count {
            for &d in &comp_succs[c] {
                level[c] = level[c].max(level[d as usize] + 1);
            }
        }
        let depth = level.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
        let mut levels = vec![Vec::new(); depth];
        for (c, &l) in level.iter().enumerate() {
            levels[l as usize].push(c as u32);
        }
        let members = scc.members();
        LevelSchedule {
            scc,
            levels,
            members,
        }
    }

    /// The component structure the schedule was built from.
    pub fn scc(&self) -> &SccInfo {
        &self.scc
    }

    /// Number of levels (the critical-path length of the condensation).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Components per level, ascending from the sinks.
    pub fn levels(&self) -> &[Vec<u32>] {
        &self.levels
    }

    /// Size of the widest level — the available parallelism.
    pub fn max_width(&self) -> usize {
        self.levels.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Statistics equivalent to a full sequential [`digraph`] run.
    pub fn stats(&self, graph: &Graph) -> DigraphStats {
        let mut stats = DigraphStats {
            scc_count: self.scc.count(),
            ..DigraphStats::default()
        };
        let sizes = self.scc.sizes();
        for &s in &sizes {
            stats.max_scc_size = stats.max_scc_size.max(s);
            if s > 1 {
                stats.nontrivial_sccs += 1;
                stats.cyclic_nodes += s;
            }
        }
        for node in 0..graph.node_count() {
            if sizes[self.scc.component(node)] == 1 && graph.has_self_loop(node) {
                stats.cyclic_nodes += 1;
            }
        }
        stats
    }
}

/// Minimum components per worker on the widest level before threading
/// pays for itself. Below this, spawn latency and per-level barriers cost
/// more than the unions they parallelize, so [`digraph_levels`] runs the
/// sequential traversal instead (the result is bit-identical either way).
const PARALLEL_GRAIN: usize = 4;

/// Runs the Digraph closure with level-scheduled parallelism.
///
/// Semantically identical to [`digraph`] — `sets` rows enter holding
/// `F'(x)` and leave holding `F(x)`, bit for bit — but the per-level
/// frontiers are split across `threads` worker threads.
///
/// The entry point is **adaptive**: with `threads <= 1`, or when the
/// schedule's widest level holds fewer than `threads ×` [`PARALLEL_GRAIN`]
/// components (deep narrow chains, tiny grammars), it falls back to the
/// sequential traversal rather than paying thread-spawn and per-level
/// barrier costs for no parallelism. Use [`digraph_with_schedule`] to
/// force the level-scheduled path regardless of shape.
///
/// # Panics
///
/// Panics if `sets.rows() != graph.node_count()`.
///
/// # Examples
///
/// ```
/// use lalr_bitset::BitMatrix;
/// use lalr_digraph::{digraph, digraph_levels, Graph};
///
/// let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
/// let mut seq = BitMatrix::new(4, 8);
/// seq.set(3, 7);
/// let mut par = seq.clone();
/// let s1 = digraph(&g, &mut seq);
/// let s2 = digraph_levels(&g, &mut par, 4);
/// assert_eq!(seq, par);
/// assert_eq!(s1, s2);
/// ```
pub fn digraph_levels(graph: &Graph, sets: &mut BitMatrix, threads: usize) -> DigraphStats {
    assert_eq!(
        sets.rows(),
        graph.node_count(),
        "one set row is required per graph node"
    );
    if threads <= 1 {
        return digraph(graph, sets);
    }
    let schedule = LevelSchedule::of(graph);
    if schedule.max_width() < threads * PARALLEL_GRAIN {
        return digraph(graph, sets);
    }
    digraph_with_schedule(graph, sets, &schedule, threads)
}

/// Everything a recorded traversal learned: sequential-equivalent
/// stats, set-operation tallies, and the shape of the level schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraversalReport {
    /// Statistics identical to a sequential [`digraph`] run.
    pub stats: DigraphStats,
    /// Row unions / copies performed (deterministic per graph).
    pub counts: TraversalCounts,
    /// Levels in the condensation schedule (critical-path length).
    pub levels: usize,
    /// Width of the widest level (available parallelism).
    pub max_width: usize,
}

/// [`digraph_levels`] under an observer: tallies row unions/copies,
/// reports the schedule shape, and — on the threaded path — emits one
/// `digraph.level` span per frontier so the trace shows where the
/// critical path goes. The adaptive fallback matches
/// [`digraph_levels`]; the matrix is bit-identical in every case.
///
/// # Panics
///
/// Panics if `sets.rows() != graph.node_count()`.
pub fn digraph_levels_recorded(
    graph: &Graph,
    sets: &mut BitMatrix,
    threads: usize,
    rec: &dyn Recorder,
) -> TraversalReport {
    assert_eq!(
        sets.rows(),
        graph.node_count(),
        "one set row is required per graph node"
    );
    let schedule = LevelSchedule::of(graph);
    let shape = |stats: DigraphStats, counts: TraversalCounts| TraversalReport {
        stats,
        counts,
        levels: schedule.level_count(),
        max_width: schedule.max_width(),
    };
    if threads <= 1 || schedule.max_width() < threads * PARALLEL_GRAIN {
        let (stats, counts) = digraph_counting(graph, sets);
        return shape(stats, counts);
    }
    let report = schedule_inner(graph, sets, &schedule, threads, rec);
    shape(report.stats, report.counts)
}

/// Like [`digraph_levels`] but reuses a precomputed [`LevelSchedule`]
/// (useful when the same relation is traversed repeatedly, or when the
/// caller also wants the schedule's structure for reporting).
pub fn digraph_with_schedule(
    graph: &Graph,
    sets: &mut BitMatrix,
    schedule: &LevelSchedule,
    threads: usize,
) -> DigraphStats {
    assert_eq!(
        sets.rows(),
        graph.node_count(),
        "one set row is required per graph node"
    );
    schedule_inner(graph, sets, schedule, threads, &lalr_obs::NULL).stats
}

/// The level-scheduled engine shared by the plain and recorded entry
/// points. With the null recorder the tallies are never touched and no
/// spans are emitted, so the plain path's cost is unchanged.
///
/// # Cache-aware tiling
///
/// Each worker sweeps its share of a level in row-band tiles sized to
/// L2 (see [`tile_rows`]). Within a tile the successor unions of all
/// components are collected as `(source row, representative row)` ops,
/// sorted by source and deduplicated, then executed run-by-run: the
/// source row is read **once** into a per-worker scratch row
/// ([`RowBuf`] — stack-inline for fixed-width layouts) and OR-ed into
/// every destination that wants it. A hub row feeding many components
/// of a tile is therefore loaded once per tile instead of once per
/// edge, and the tile's destination rows stay L2-resident across the
/// whole batch. Ordering is immaterial — every op ORs a row finalized
/// in a strictly lower level, and OR is commutative and monotone — so
/// the result is bit-identical to the untiled sweep.
fn schedule_inner(
    graph: &Graph,
    sets: &mut BitMatrix,
    schedule: &LevelSchedule,
    threads: usize,
    rec: &dyn Recorder,
) -> TraversalReport {
    let stats = schedule.stats(graph);
    let mut report = TraversalReport {
        stats,
        counts: TraversalCounts::default(),
        levels: schedule.level_count(),
        max_width: schedule.max_width(),
    };
    if graph.node_count() == 0 {
        return report;
    }
    let comp = schedule.scc();
    let atomic = AtomicBitMatrix::from_matrix(sets);
    let layout = atomic.layout();
    let tile = tile_rows(layout.words());
    let workers = threads.max(1);
    let enabled = rec.is_enabled();
    let unions = AtomicU64::new(0);
    let assigns = AtomicU64::new(0);
    let src_loads = AtomicU64::new(0);

    // One closure per tile of same-level components (all owned by the
    // calling worker): union each component's member rows into its
    // representative, batch the external successor unions across the
    // whole tile, then scatter representatives back to members.
    let process_tile = |comps: &[u32], scratch: &mut RowBuf, ops: &mut Vec<(u32, u32)>| {
        let mut local_unions = 0u64;
        let mut local_assigns = 0u64;
        let mut local_loads = 0u64;
        ops.clear();
        for &c in comps {
            let c = c as usize;
            let members = &schedule.members[c];
            let rep = members[0];
            for &m in &members[1..] {
                atomic.union_row_from(rep, m);
                local_unions += 1;
            }
            for &x in members {
                for &y in graph.successors(x) {
                    if comp.component(y as usize) != c {
                        ops.push((y, rep as u32));
                    }
                }
            }
        }
        // Sort by source row and drop duplicate (source, rep) pairs so
        // each distinct source is loaded once and OR-ed once per
        // destination.
        ops.sort_unstable();
        ops.dedup();
        let mut i = 0;
        while i < ops.len() {
            let src = ops[i].0;
            atomic.read_row_into(src as usize, scratch.as_mut_slice());
            local_loads += 1;
            while i < ops.len() && ops[i].0 == src {
                atomic.fetch_or_row(ops[i].1 as usize, scratch.as_slice());
                local_unions += 1;
                i += 1;
            }
        }
        for &c in comps {
            let members = &schedule.members[c as usize];
            let rep = members[0];
            for &m in &members[1..] {
                atomic.copy_row_from(m, rep);
            }
            local_assigns += members.len() as u64 - 1;
        }
        if enabled {
            unions.fetch_add(local_unions, Ordering::Relaxed);
            assigns.fetch_add(local_assigns, Ordering::Relaxed);
            src_loads.fetch_add(local_loads, Ordering::Relaxed);
        }
    };

    if workers == 1 {
        let mut scratch = RowBuf::for_layout(layout);
        let mut ops: Vec<(u32, u32)> = Vec::new();
        for level in schedule.levels() {
            let span = enabled.then(|| lalr_obs::span(rec, "digraph.level"));
            for chunk in level.chunks(tile) {
                process_tile(chunk, &mut scratch, &mut ops);
            }
            drop(span);
        }
    } else {
        let barrier = Barrier::new(workers);
        std::thread::scope(|scope| {
            for tid in 0..workers {
                let barrier = &barrier;
                let process_tile = &process_tile;
                scope.spawn(move || {
                    let mut scratch = RowBuf::for_layout(layout);
                    let mut ops: Vec<(u32, u32)> = Vec::new();
                    let mut mine: Vec<u32> = Vec::new();
                    for level in schedule.levels() {
                        // Worker 0 brackets the whole frontier: its exit
                        // lands after the barrier, when every worker has
                        // finished the level.
                        let span =
                            (enabled && tid == 0).then(|| lalr_obs::span(rec, "digraph.level"));
                        mine.clear();
                        mine.extend((tid..level.len()).step_by(workers).map(|i| level[i]));
                        for chunk in mine.chunks(tile) {
                            process_tile(chunk, &mut scratch, &mut ops);
                        }
                        // The wait publishes this level's rows to every
                        // worker before any of them starts the next level.
                        barrier.wait();
                        drop(span);
                    }
                });
            }
        });
    }

    *sets = atomic.into_matrix();
    report.counts = TraversalCounts {
        unions: unions.into_inner(),
        assigns: assigns.into_inner(),
    };
    if enabled {
        rec.add("kernel.digraph.src_loads", src_loads.into_inner());
        rec.add("kernel.digraph.atomic_or", report.counts.unions);
        rec.add("kernel.digraph.atomic_copy", report.counts.assigns);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(
        n: usize,
        cols: usize,
        edges: &[(usize, usize)],
        init: &[(usize, usize)],
    ) -> (Graph, BitMatrix) {
        let g = Graph::from_edges(n, edges.iter().copied());
        let mut m = BitMatrix::new(n, cols);
        for &(r, c) in init {
            m.set(r, c);
        }
        (g, m)
    }

    fn assert_matches_sequential(
        n: usize,
        cols: usize,
        edges: &[(usize, usize)],
        init: &[(usize, usize)],
    ) {
        let (g, seq_input) = setup(n, cols, edges, init);
        let mut seq = seq_input.clone();
        let seq_stats = digraph(&g, &mut seq);
        let schedule = LevelSchedule::of(&g);
        for threads in [1, 2, 4, 8] {
            // The adaptive entry point (may fall back to sequential)…
            let mut par = seq_input.clone();
            let par_stats = digraph_levels(&g, &mut par, threads);
            assert_eq!(seq, par, "matrix mismatch at {threads} threads");
            assert_eq!(seq_stats, par_stats, "stats mismatch at {threads} threads");
            // …and the forced level-scheduled path, so narrow graphs still
            // exercise the threaded machinery.
            let mut forced = seq_input.clone();
            let forced_stats = digraph_with_schedule(&g, &mut forced, &schedule, threads);
            assert_eq!(seq, forced, "forced matrix mismatch at {threads} threads");
            assert_eq!(
                seq_stats, forced_stats,
                "forced stats mismatch at {threads} threads"
            );
        }
    }

    #[test]
    fn chain() {
        assert_matches_sequential(3, 8, &[(0, 1), (1, 2)], &[(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn cycle() {
        assert_matches_sequential(3, 8, &[(0, 1), (1, 2), (2, 0)], &[(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn diamond() {
        assert_matches_sequential(
            4,
            8,
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
            &[(1, 1), (2, 2), (3, 3)],
        );
    }

    #[test]
    fn self_loops_and_bridged_cycles() {
        assert_matches_sequential(
            6,
            16,
            &[(0, 0), (1, 2), (2, 1), (2, 3), (3, 4), (4, 3), (4, 5)],
            &[(0, 1), (1, 3), (3, 5), (5, 9)],
        );
    }

    #[test]
    fn empty_graph() {
        assert_matches_sequential(0, 4, &[], &[]);
    }

    #[test]
    fn more_threads_than_components() {
        assert_matches_sequential(2, 4, &[(0, 1)], &[(1, 2)]);
    }

    #[test]
    fn schedule_levels_respect_edges() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 2), (2, 4)]);
        let s = LevelSchedule::of(&g);
        let mut level_of = vec![usize::MAX; s.scc().count()];
        for (l, comps) in s.levels().iter().enumerate() {
            for &c in comps {
                level_of[c as usize] = l;
            }
        }
        for (u, v) in g.edges() {
            let (cu, cv) = (s.scc().component(u), s.scc().component(v));
            if cu != cv {
                assert!(
                    level_of[cu] > level_of[cv],
                    "edge {u}->{v} must descend a level"
                );
            }
        }
        // 0..=4 as a DAG: 4 is a sink, so lives at level 0.
        assert_eq!(level_of[s.scc().component(4)], 0);
        assert!(
            s.max_width() >= 2,
            "0 and 3 share a level with the sink chain"
        );
    }

    #[test]
    fn schedule_stats_match_sequential_digraph() {
        let g = Graph::from_edges(7, [(0, 1), (1, 0), (1, 2), (3, 3), (4, 5), (5, 6), (6, 4)]);
        let s = LevelSchedule::of(&g);
        let mut m = BitMatrix::new(7, 4);
        let seq_stats = digraph(&g, &mut m);
        assert_eq!(s.stats(&g), seq_stats);
    }

    #[test]
    fn recorded_traversal_is_bit_identical_and_emits_level_spans() {
        use lalr_obs::{CollectingRecorder, Recorder};
        // Wide two-level DAG so the threaded path is actually taken:
        // 32 sources each pointing at one of 8 sinks.
        let n = 40;
        let edges: Vec<_> = (0..32).map(|i| (i, 32 + i % 8)).collect();
        let g = Graph::from_edges(n, edges);
        let mut m = BitMatrix::new(n, 16);
        for s in 32..40 {
            m.set(s, s - 32);
        }
        let mut seq = m.clone();
        let seq_stats = digraph(&g, &mut seq);

        let rec = CollectingRecorder::new();
        let mut par = m.clone();
        let report = digraph_levels_recorded(&g, &mut par, 2, &rec);
        assert_eq!(seq, par, "recorded traversal must be bit-identical");
        assert_eq!(seq_stats, report.stats);
        assert_eq!(report.levels, 2);
        assert_eq!(report.max_width, 32);
        assert_eq!(report.counts.unions, 32, "one union per cross edge");
        assert_eq!(report.counts.assigns, 0, "all components are singletons");
        let events = rec.report();
        let level_spans = events
            .events
            .iter()
            .filter(|e| e.name == "digraph.level")
            .count();
        assert_eq!(level_spans, 2, "one span per frontier");

        // The sequential fallback (threads = 1) still counts and
        // reports the schedule shape, without level spans.
        let quiet = CollectingRecorder::new();
        let mut seq2 = m.clone();
        let fallback = digraph_levels_recorded(&g, &mut seq2, 1, &quiet);
        assert_eq!(seq, seq2);
        assert_eq!(fallback.levels, 2);
        assert!(fallback.counts.unions > 0);
        assert!(quiet.report().events.is_empty());
        assert!(quiet.is_enabled());
    }

    #[test]
    fn wide_random_relation_is_bit_identical() {
        // Deterministic pseudo-random graph: wide enough to exercise real
        // multi-component levels and cross-level unions.
        let n = 300;
        let cols = 180;
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut edges = Vec::new();
        for _ in 0..900 {
            let u = (step() % n as u64) as usize;
            let v = (step() % n as u64) as usize;
            edges.push((u, v));
        }
        let mut init = Vec::new();
        for r in 0..n {
            init.push((r, (step() % cols as u64) as usize));
        }
        assert_matches_sequential(n, cols, &edges, &init);
    }
}
