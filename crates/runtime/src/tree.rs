//! Parse trees.

use lalr_tables::ParseTable;

use crate::token::Token;

/// A concrete parse tree: interior nodes are reductions, leaves are tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTree {
    /// A reduction by `production`, yielding `nonterminal`.
    Node {
        /// The produced nonterminal's index.
        nonterminal: u32,
        /// The production reduced.
        production: u32,
        /// One child per RHS symbol (empty for ε).
        children: Vec<ParseTree>,
    },
    /// A shifted token.
    Leaf(Token),
}

impl ParseTree {
    /// Number of token leaves.
    pub fn leaf_count(&self) -> usize {
        match self {
            ParseTree::Leaf(_) => 1,
            ParseTree::Node { children, .. } => children.iter().map(ParseTree::leaf_count).sum(),
        }
    }

    /// Number of interior nodes (= reductions performed).
    pub fn node_count(&self) -> usize {
        match self {
            ParseTree::Leaf(_) => 0,
            ParseTree::Node { children, .. } => {
                1 + children.iter().map(ParseTree::node_count).sum::<usize>()
            }
        }
    }

    /// Height of the tree (a leaf has height 0).
    pub fn height(&self) -> usize {
        match self {
            ParseTree::Leaf(_) => 0,
            ParseTree::Node { children, .. } => {
                1 + children.iter().map(ParseTree::height).max().unwrap_or(0)
            }
        }
    }

    /// The leaves in order — the parsed token sequence (round-trip check).
    pub fn leaves(&self) -> Vec<&Token> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a Token>) {
        match self {
            ParseTree::Leaf(t) => out.push(t),
            ParseTree::Node { children, .. } => {
                for c in children {
                    c.collect_leaves(out);
                }
            }
        }
    }

    /// The *reverse rightmost derivation* this tree encodes — the sequence
    /// of production indices an LR parser emits (post-order, right-to-left
    /// children visited last). Replaying it backwards from the start
    /// symbol reproduces the input: the classic LR output convention.
    pub fn reverse_rightmost_derivation(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.collect_reductions(&mut out);
        out
    }

    fn collect_reductions(&self, out: &mut Vec<u32>) {
        if let ParseTree::Node {
            production,
            children,
            ..
        } = self
        {
            for c in children {
                c.collect_reductions(out);
            }
            out.push(*production);
        }
    }

    /// Renders the tree as an s-expression using the table's symbol names.
    pub fn to_sexpr(&self, table: &ParseTable) -> String {
        match self {
            ParseTree::Leaf(t) => t.text().to_string(),
            ParseTree::Node {
                nonterminal,
                children,
                ..
            } => {
                let name = table.nonterminal_name(*nonterminal);
                if children.is_empty() {
                    format!("({name})")
                } else {
                    let inner: Vec<String> = children.iter().map(|c| c.to_sexpr(table)).collect();
                    format!("({} {})", name, inner.join(" "))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(text: &str) -> ParseTree {
        ParseTree::Leaf(Token::new(1, text, 0))
    }

    #[test]
    fn counting() {
        let tree = ParseTree::Node {
            nonterminal: 1,
            production: 1,
            children: vec![
                leaf("a"),
                ParseTree::Node {
                    nonterminal: 2,
                    production: 2,
                    children: vec![leaf("b"), leaf("c")],
                },
            ],
        };
        assert_eq!(tree.leaf_count(), 3);
        assert_eq!(tree.node_count(), 2);
        assert_eq!(tree.height(), 2);
        let texts: Vec<&str> = tree.leaves().iter().map(|t| t.text()).collect();
        assert_eq!(texts, vec!["a", "b", "c"]);
    }

    #[test]
    fn derivation_is_postorder() {
        let tree = ParseTree::Node {
            nonterminal: 1,
            production: 1,
            children: vec![
                ParseTree::Node {
                    nonterminal: 2,
                    production: 2,
                    children: vec![leaf("a")],
                },
                ParseTree::Node {
                    nonterminal: 3,
                    production: 3,
                    children: vec![],
                },
            ],
        };
        assert_eq!(tree.reverse_rightmost_derivation(), vec![2, 3, 1]);
    }

    #[test]
    fn epsilon_node() {
        let tree = ParseTree::Node {
            nonterminal: 1,
            production: 2,
            children: vec![],
        };
        assert_eq!(tree.leaf_count(), 0);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.height(), 1);
    }
}
