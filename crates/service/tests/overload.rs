//! Overload and self-healing: the health state machine's full
//! `ok → degraded → ok` cycle in process, and the acceptance soak for
//! the event-loop daemon — a seeded `shard.panic` schedule plus ~20%
//! transport/service fault rates plus a hostile-client mix, through
//! which every well-behaved request must converge via retry onto
//! byte-identical responses to a fault-free reference, with at least
//! one supervised shard restart, exact per-rule fault accounting
//! (including the `shard.panic` and `daemon.admit` admission
//! failpoints), a final `ok` health state, and a clean drain.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lalr_core::Parallelism;
use lalr_service::protocol::{request_to_line, response_to_line};
use lalr_service::{
    call_with_retry, DaemonConfig, EventDaemon, Fault, FaultPlan, GrammarFormat, ParseTarget,
    Request, Response, RetryPolicy, Service, ServiceConfig, ServiceError, Trigger,
};

use serde_json::Value;

fn compile(grammar: &str) -> Request {
    Request::Compile {
        grammar: grammar.to_string(),
        format: GrammarFormat::Native,
    }
}

/// Drives the service to sustained queue overflow, then checks each leg
/// of the hysteresis contract: consecutive sheds flip to `degraded`;
/// degraded still serves cache hits but sheds cold compiles with a
/// retryable `degraded` error; calm traffic recovers to `ok`, after
/// which cold compiles run again.
#[test]
fn degraded_state_sheds_cold_compiles_serves_hits_and_recovers() {
    let faults = FaultPlan::new(17)
        // Every compile sleeps, so one worker and two queue slots
        // saturate under the thundering herd below.
        .rule("service.compile", Fault::Delay(40), Trigger::Rate(1.0))
        .build();
    let service = Arc::new(Service::new(ServiceConfig {
        workers: Parallelism::sequential(),
        max_pending: 2,
        faults,
        ..ServiceConfig::default()
    }));

    // Warm one artifact before the storm: degraded mode must keep
    // serving it from cache while cold compiles are shed.
    let warm = "w : \"w\" ;";
    assert!(service.call(compile(warm), None).is_ok());

    // Twelve concurrent cold compiles against workers=1/queue=2: at
    // most three are accepted before the queue is full, so among the
    // nine-plus sheds some consecutive run reaches the threshold of 3
    // regardless of interleaving (9 sheds split by at most 3
    // accept-resets leave a run of at least ceil(9/4) = 3).
    let handles: Vec<_> = (0..12)
        .map(|t| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || service.call(compile(&format!("s : \"x{t}\" ;")), None))
        })
        .collect();
    let responses: Vec<Response> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let shed = responses
        .iter()
        .filter(|r| matches!(r, Response::Error(ServiceError::Overloaded { .. })))
        .count();
    assert!(shed >= 3, "the herd must overflow the queue: {responses:?}");

    let report = service.health_report();
    assert_eq!(report.state, "degraded", "{report:?}");
    assert_eq!(report.degraded_transitions, 1, "{report:?}");

    // Wait out the delayed compiles so the queue is empty again.
    let started = Instant::now();
    while service.health_report().queue_depth > 0 {
        assert!(started.elapsed() < Duration::from_secs(10));
        std::thread::sleep(Duration::from_millis(10));
    }

    // Degraded: the warm artifact still serves (a cache hit never runs
    // the pipeline), while a cold compile is shed with a retryable
    // `degraded` error instead of being queued.
    match service.call(compile(warm), None) {
        Response::Compile(c) => assert!(c.cached, "{c:?}"),
        other => panic!("cache hit must serve while degraded: {other:?}"),
    }
    match service.call(compile("c : \"cold\" ;"), None) {
        Response::Error(e) => {
            assert_eq!(e.kind(), "degraded", "{e}");
            assert!(e.is_retryable(), "{e}");
        }
        other => panic!("cold compile must shed while degraded: {other:?}"),
    }

    // Recovery: calm accepted requests (queue at most half full) flip
    // the state back to `ok` after the configured streak, and the same
    // cold compile now runs.
    for _ in 0..12 {
        assert!(service.call(Request::Stats, None).is_ok());
    }
    let report = service.health_report();
    assert_eq!(report.state, "ok", "{report:?}");
    match service.call(compile("c : \"cold\" ;"), None) {
        Response::Compile(c) => assert!(!c.cached, "{c:?}"),
        other => panic!("cold compile must run after recovery: {other:?}"),
    }
    assert_eq!(service.health_report().degraded_transitions, 1);
}

/// One round of the soak's well-behaved workload.
fn workload() -> Vec<Request> {
    let mut requests = Vec::new();
    for entry in lalr_corpus::all_entries() {
        let grammar = entry.source.to_string();
        requests.push(Request::Compile {
            grammar: grammar.clone(),
            format: GrammarFormat::Native,
        });
        requests.push(Request::Classify {
            grammar: grammar.clone(),
            format: GrammarFormat::Native,
        });
        requests.push(Request::Table {
            grammar: grammar.clone(),
            format: GrammarFormat::Native,
            compressed: true,
        });
        let parsed = entry.grammar();
        let documents: Vec<String> = lalr_corpus::sentences::generate_many(&parsed, 3, 2, 16)
            .iter()
            .map(|s| {
                s.iter()
                    .map(|&t| parsed.terminal_name(t))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        if !documents.is_empty() {
            requests.push(Request::Parse {
                target: ParseTarget::Text {
                    grammar: grammar.clone(),
                    format: GrammarFormat::Native,
                },
                documents,
                recover: false,
                sync: Vec::new(),
            });
        }
    }
    requests
}

/// Drops the scheduling-dependent `cached` flag before comparison.
fn normalize(line: &str) -> String {
    line.replace("\"cached\":true", "\"cached\":false")
}

/// The soak's fault schedule: ~20% combined transport/service faults,
/// the `daemon.admit` admission failpoint, and a `shard.panic` schedule
/// with one deterministic firing (so every seed restarts at least one
/// shard) plus a seed-dependent rate. Every fault is retryable from the
/// client's point of view.
fn plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .rule("daemon.read", Fault::Error, Trigger::Rate(0.05))
        .rule("daemon.read", Fault::Delay(1), Trigger::Rate(0.03))
        .rule("daemon.write", Fault::PartialWrite, Trigger::Rate(0.04))
        .rule("service.compile", Fault::Panic, Trigger::Rate(0.05))
        .rule("service.compile", Fault::Delay(2), Trigger::Rate(0.05))
        .rule("daemon.admit", Fault::Error, Trigger::Rate(0.04))
        .rule("shard.panic", Fault::Panic, Trigger::OnHits(vec![7]))
        .rule("shard.panic", Fault::Panic, Trigger::Rate(0.003))
}

fn run_soak(seed: u64, expected_lines: &[String], requests: &Arc<Vec<Request>>) {
    const THREADS: usize = 6;
    let faults = plan(seed).build();
    let quota = THREADS + 6;
    let daemon = EventDaemon::start(
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            drain_deadline: Duration::from_secs(5),
            max_connections_per_peer: quota,
            write_budget: Duration::from_millis(250),
            faults: faults.clone(),
            service: ServiceConfig {
                workers: Parallelism::new(THREADS),
                faults: faults.clone(),
                ..ServiceConfig::default()
            },
            ..DaemonConfig::default()
        },
        2,
    )
    .expect("bind soak daemon");
    let addr = daemon.addr().to_string();

    // The hostile mix runs alongside the well-behaved clients: quota
    // floods (waves of simultaneous connections from the one loopback
    // peer) and a stalled reader pipelining requests it never drains.
    // Every hostile socket is closed before the drain below.
    let stop_hostile = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flood = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop_hostile);
        std::thread::spawn(move || {
            let mut waves = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let conns: Vec<TcpStream> = (0..quota + 8)
                    .filter_map(|_| TcpStream::connect(&addr).ok())
                    .collect();
                waves += 1;
                drop(conns);
                std::thread::sleep(Duration::from_millis(40));
            }
            waves
        })
    };
    let stalled = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop_hostile);
        std::thread::spawn(move || {
            let line = format!("{}\n", request_to_line(&Request::Stats, None));
            let payload = line.repeat(64);
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                if let Ok(mut c) = TcpStream::connect(&addr) {
                    let _ = c.write_all(payload.as_bytes());
                    std::thread::sleep(Duration::from_millis(120));
                    // Dropped unread: the daemon sees the close (or the
                    // write budget fires first) and must clean up.
                }
                std::thread::sleep(Duration::from_millis(40));
            }
        })
    };

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let addr = addr.clone();
            let requests = Arc::clone(requests);
            std::thread::spawn(move || {
                // Generous retries: an attempt can die to injected
                // transport faults, a shard panic, an admission
                // failpoint rejection, or a transient quota rejection
                // while a flood wave holds the peer's slots — all
                // retryable, all expected to converge.
                let policy = RetryPolicy {
                    retries: 60,
                    backoff: Duration::from_millis(1),
                    cap: Duration::from_millis(16),
                    seed: seed ^ t as u64,
                };
                let none = lalr_service::FaultInjector::disabled();
                let mut got = Vec::new();
                for i in (t..requests.len()).step_by(THREADS) {
                    let reply = call_with_retry(
                        &addr,
                        &requests[i],
                        None,
                        Duration::from_secs(10),
                        &policy,
                        &none,
                    )
                    .unwrap_or_else(|e| panic!("request {i} never succeeded: {e}"));
                    assert!(
                        reply.is_ok(),
                        "request {i} settled on an error reply: {}",
                        reply.raw
                    );
                    got.push((i, normalize(&reply.raw)));
                }
                got
            })
        })
        .collect();

    let mut actual = vec![String::new(); requests.len()];
    for h in handles {
        for (i, line) in h.join().expect("soak client panicked") {
            actual[i] = line;
        }
    }
    stop_hostile.store(true, std::sync::atomic::Ordering::Relaxed);
    let waves = flood.join().expect("flood thread");
    stalled.join().expect("stalled thread");
    assert!(waves >= 1, "the flood never ran");

    // Byte-identical convergence versus the fault-free reference.
    for (i, (want, got)) in expected_lines.iter().zip(&actual).enumerate() {
        assert_eq!(
            got,
            want,
            "seed {seed:#x}: request {i} ({:?}) diverged under overload",
            requests[i].op()
        );
    }

    // Exact fault accounting for every rule — including the admission
    // failpoint and the shard.panic schedule.
    for s in &faults.stats() {
        assert_eq!(
            s.injected, s.expected,
            "seed {seed:#x}: rule {s:?} lost count of its own schedule"
        );
    }
    assert!(
        faults.injected_at("shard.panic") >= 1,
        "seed {seed:#x}: the shard.panic schedule never fired"
    );

    // Calm traffic until the health state machine reads `ok` again,
    // then confirm the restart is visible over the protocol.
    let policy = RetryPolicy {
        retries: 60,
        backoff: Duration::from_millis(1),
        cap: Duration::from_millis(16),
        seed,
    };
    let none = lalr_service::FaultInjector::disabled();
    let probe = |req: &Request| {
        call_with_retry(&addr, req, None, Duration::from_secs(10), &policy, &none)
            .expect("probe converges")
    };
    let started = Instant::now();
    let health = loop {
        let reply = probe(&Request::Health);
        assert!(reply.is_ok(), "{}", reply.raw);
        if reply.value.get("state").and_then(Value::as_str) == Some("ok") {
            break reply;
        }
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "seed {seed:#x}: daemon never recovered to ok: {}",
            reply.raw
        );
        let _ = probe(&requests[0]);
        std::thread::sleep(Duration::from_millis(10));
    };
    let restarts = health
        .value
        .get("shard_restarts")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    assert!(
        restarts >= 1,
        "seed {seed:#x}: no shard restart recorded: {}",
        health.raw
    );

    daemon.stop();
    let summary = daemon.join();
    assert_eq!(summary.restarts, restarts, "seed {seed:#x}: {summary:?}");
    assert_eq!(
        summary.aborted, 0,
        "seed {seed:#x}: drain aborted connections after clients finished"
    );
}

#[test]
fn overload_soak_self_heals_across_three_seeds() {
    if !lalr_net::supported() {
        return;
    }
    let requests = Arc::new(workload());
    assert!(requests.len() >= 30, "workload is non-trivial");

    // Fault-free single-threaded reference, computed once.
    let reference = Service::new(ServiceConfig {
        workers: Parallelism::sequential(),
        ..ServiceConfig::default()
    });
    let expected: Vec<String> = requests
        .iter()
        .map(|r| normalize(&response_to_line(&reference.call(r.clone(), None))))
        .collect();
    drop(reference);

    for seed in [0x0DD5_u64, 0x5EED, 0xF00D] {
        run_soak(seed, &expected, &requests);
    }
}
