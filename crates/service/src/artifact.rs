//! The unit the cache stores: one grammar, fully compiled.

use std::panic::{self, AssertUnwindSafe};

use lalr_automata::Lr0Automaton;
use lalr_core::{
    classify_recorded, DigraphStats, LalrAnalysis, LookaheadSets, MethodAdequacy, Parallelism,
    RelationStats,
};
use lalr_grammar::Grammar;
use lalr_obs::Recorder;
use lalr_store::ArtifactRecord;
use lalr_tables::{build_table, CompressedTable, ParseTable, TableOptions};

use crate::error::ServiceError;

/// How a grammar text should be read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GrammarFormat {
    /// The native `lalr-grammar` text format.
    #[default]
    Native,
    /// yacc/bison syntax (actions stripped), as `lalrgen` does for `.y`
    /// files.
    Yacc,
}

/// Pipeline intermediates that only a fresh compile produces — kept for
/// diagnostics, not needed to serve any request op.
#[derive(Debug)]
struct PipelineExtras {
    grammar: Grammar,
    lr0: Lr0Automaton,
    lookaheads: LookaheadSets,
}

/// Everything the pipeline produces for one grammar, bundled so a cache
/// hit answers *any* request kind — compile, classify, table, or parse —
/// without touching the engine again.
///
/// An artifact can come from two places: a fresh compile (which also
/// carries the pipeline intermediates — grammar, automaton, look-ahead
/// sets) or the on-disk store (tables and summary stats only, via
/// [`CompiledArtifact::from_record`]). Every request op is served from
/// the always-present summary + tables, so the two origins answer
/// identically.
#[derive(Debug)]
pub struct CompiledArtifact {
    fingerprint: u64,
    states: usize,
    productions: usize,
    terminals: usize,
    adequacy: MethodAdequacy,
    relations: RelationStats,
    reads: DigraphStats,
    includes: DigraphStats,
    table: ParseTable,
    compressed: CompressedTable,
    approx_bytes: usize,
    extras: Option<PipelineExtras>,
}

impl CompiledArtifact {
    /// Runs the full pipeline — parse → LR(0) → DeRemer–Pennello →
    /// classification → dense + compressed tables — under `catch_unwind`,
    /// so an engine bug becomes a [`ServiceError::Panicked`] response
    /// instead of a dead worker.
    pub fn compile(
        text: &str,
        format: GrammarFormat,
        fingerprint: u64,
        pipeline: &Parallelism,
    ) -> Result<CompiledArtifact, ServiceError> {
        Self::compile_recorded(text, format, fingerprint, pipeline, &lalr_obs::NULL)
    }

    /// [`CompiledArtifact::compile`] under an observer: the service folds
    /// each compile's phase timings (`parse`, `lr0.build`,
    /// `relations.build`, the two traversals, `la.union`, `classify`,
    /// `tables.build`) into its metrics.
    pub fn compile_recorded(
        text: &str,
        format: GrammarFormat,
        fingerprint: u64,
        pipeline: &Parallelism,
        rec: &dyn Recorder,
    ) -> Result<CompiledArtifact, ServiceError> {
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            Self::compile_inner(text, format, fingerprint, pipeline, rec)
        }));
        match result {
            Ok(r) => r,
            Err(payload) => Err(ServiceError::from_panic(payload.as_ref())),
        }
    }

    fn compile_inner(
        text: &str,
        format: GrammarFormat,
        fingerprint: u64,
        pipeline: &Parallelism,
        rec: &dyn Recorder,
    ) -> Result<CompiledArtifact, ServiceError> {
        let parsed = {
            let _span = lalr_obs::span(rec, "parse");
            match format {
                GrammarFormat::Native => lalr_grammar::parse_grammar(text),
                GrammarFormat::Yacc => lalr_grammar::parse_yacc(text),
            }
        };
        let grammar = parsed.map_err(|e| ServiceError::BadGrammar(e.to_string()))?;
        let lr0 = Lr0Automaton::build_recorded(&grammar, rec);
        let analysis = LalrAnalysis::compute_recorded(&grammar, &lr0, pipeline, rec);
        let adequacy = {
            // The per-method spans inside become nested under `classify`,
            // so the service's top-level phase list stays flat.
            let _span = lalr_obs::span(rec, "classify");
            classify_recorded(&grammar, &lr0, &analysis, pipeline, rec)
        };
        let relations = analysis.relation_stats().clone();
        let reads = analysis.reads_traversal().clone();
        let includes = analysis.includes_traversal().clone();
        let (table, compressed) = {
            let _span = lalr_obs::span(rec, "tables.build");
            let table = build_table(
                &grammar,
                &lr0,
                analysis.lookaheads(),
                TableOptions::default(),
            );
            let compressed = CompressedTable::from_dense(&table);
            (table, compressed)
        };
        let mut artifact = CompiledArtifact {
            fingerprint,
            states: lr0.state_count(),
            productions: grammar.production_count(),
            terminals: grammar.terminal_count(),
            adequacy,
            relations,
            reads,
            includes,
            table,
            compressed,
            approx_bytes: 0,
            extras: Some(PipelineExtras {
                grammar,
                lr0,
                lookaheads: analysis.into_lookaheads(),
            }),
        };
        artifact.approx_bytes = artifact.estimate_bytes();
        Ok(artifact)
    }

    /// Estimated resident size, used for the cache's byte budget.
    ///
    /// An estimate, not an exact heap measurement: it sums the dominant
    /// dense structures (tables, look-ahead bit rows, automaton items and
    /// transitions) from their element counts and sizes, ignoring
    /// per-allocation overhead and small metadata. Relative sizes between
    /// artifacts — which is what LRU accounting needs — track reality.
    /// Store-loaded artifacts carry no pipeline intermediates, so only
    /// the table terms contribute for them.
    fn estimate_bytes(&self) -> usize {
        use std::mem::size_of;

        let ts = self.table.stats();
        let dense_table = ts.states * ts.terminals * size_of::<lalr_tables::Action>()
            + ts.states * ts.nonterminals * size_of::<u32>();
        let compressed_table = self.compressed.explicit_entries()
            * (size_of::<u32>() + size_of::<lalr_tables::Action>())
            + self.compressed.state_count() * 2 * size_of::<lalr_tables::Action>();
        let strings: usize = (0..self.table.production_count())
            .map(|p| self.table.production(p as u32).display.len())
            .sum();
        let mut total = dense_table + compressed_table + strings;
        if let Some(extras) = &self.extras {
            total += extras.lookaheads.reduction_count()
                * extras
                    .lookaheads
                    .terminal_count()
                    .div_ceil(usize::BITS as usize)
                * size_of::<usize>();
            for state in extras.lr0.states() {
                total += extras.lr0.kernel(state).items().len() * 8
                    + extras.lr0.transitions(state).len() * 12
                    + extras.lr0.reductions(state).len() * 4
                    + 32;
            }
            total += extras.grammar.size() * 8
                + extras.grammar.production_count() * 48
                + extras.grammar.symbol_count() * 24;
        }
        total
    }

    /// Rebuilds an artifact from a store record (tables + summary, no
    /// pipeline intermediates).
    pub fn from_record(record: ArtifactRecord) -> CompiledArtifact {
        CompiledArtifact {
            fingerprint: record.fingerprint,
            states: record.states as usize,
            productions: record.productions as usize,
            terminals: record.terminals as usize,
            adequacy: record.adequacy,
            relations: record.relations,
            reads: record.reads,
            includes: record.includes,
            table: record.table,
            compressed: record.compressed,
            approx_bytes: record.approx_bytes as usize,
            extras: None,
        }
    }

    /// Snapshots the storable parts of this artifact for a store
    /// publish. `key` is the full normalized cache key, kept on disk
    /// for collision confirmation.
    pub fn to_record(&self, key: &str) -> ArtifactRecord {
        ArtifactRecord {
            fingerprint: self.fingerprint,
            key: key.to_string(),
            states: self.states as u32,
            productions: self.productions as u32,
            terminals: self.terminals as u32,
            approx_bytes: self.approx_bytes as u64,
            adequacy: self.adequacy.clone(),
            relations: self.relations.clone(),
            reads: self.reads.clone(),
            includes: self.includes.clone(),
            table: self.table.clone(),
            compressed: self.compressed.clone(),
        }
    }

    /// Fingerprint of the normalized cache-key text.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// LR(0) state count.
    pub fn state_count(&self) -> usize {
        self.states
    }

    /// Grammar production count.
    pub fn production_count(&self) -> usize {
        self.productions
    }

    /// Grammar terminal count.
    pub fn terminal_count(&self) -> usize {
        self.terminals
    }

    /// The parsed grammar — present only on freshly compiled artifacts,
    /// not on store-loaded ones.
    pub fn grammar(&self) -> Option<&Grammar> {
        self.extras.as_ref().map(|e| &e.grammar)
    }

    /// The LR(0) automaton — present only on freshly compiled artifacts.
    pub fn lr0(&self) -> Option<&Lr0Automaton> {
        self.extras.as_ref().map(|e| &e.lr0)
    }

    /// The LALR(1) look-ahead sets — present only on freshly compiled
    /// artifacts.
    pub fn lookaheads(&self) -> Option<&LookaheadSets> {
        self.extras.as_ref().map(|e| &e.lookaheads)
    }

    /// Per-method conflict counts and the grammar class.
    pub fn adequacy(&self) -> &MethodAdequacy {
        &self.adequacy
    }

    /// Sizes of the four look-ahead relations.
    pub fn relation_stats(&self) -> &RelationStats {
        &self.relations
    }

    /// SCC structure of the `reads` traversal.
    pub fn reads_traversal(&self) -> &DigraphStats {
        &self.reads
    }

    /// SCC structure of the `includes` traversal.
    pub fn includes_traversal(&self) -> &DigraphStats {
        &self.includes
    }

    /// The dense ACTION/GOTO table (conflicts resolved yacc-style).
    pub fn table(&self) -> &ParseTable {
        &self.table
    }

    /// The default-reduction-compressed table.
    pub fn compressed(&self) -> &CompressedTable {
        &self.compressed
    }

    /// Estimated resident bytes (cache accounting unit).
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_a_grammar_end_to_end() {
        let a = CompiledArtifact::compile(
            "e : e \"+\" t | t ; t : \"x\" ;",
            GrammarFormat::Native,
            7,
            &Parallelism::sequential(),
        )
        .unwrap();
        assert_eq!(a.fingerprint(), 7);
        assert_eq!(a.adequacy().lalr_conflicts, 0);
        assert!(a.table().state_count() > 4);
        assert!(a.approx_bytes() > 0);
        assert!(a.grammar().is_some() && a.lr0().is_some() && a.lookaheads().is_some());
    }

    #[test]
    fn bad_grammar_is_a_structured_error() {
        let err = CompiledArtifact::compile(
            "e : : ;",
            GrammarFormat::Native,
            0,
            &Parallelism::sequential(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), "bad_grammar");
    }

    #[test]
    fn yacc_format_is_supported() {
        let a = CompiledArtifact::compile(
            "%token NUM\n%%\ne : e '+' NUM | NUM ;\n",
            GrammarFormat::Yacc,
            0,
            &Parallelism::sequential(),
        )
        .unwrap();
        assert!(a.terminal_count() >= 2);
    }

    #[test]
    fn bigger_grammars_estimate_bigger() {
        let small = CompiledArtifact::compile(
            "s : \"a\" ;",
            GrammarFormat::Native,
            0,
            &Parallelism::sequential(),
        )
        .unwrap();
        let big = CompiledArtifact::compile(
            "e : e \"+\" t | e \"-\" t | t ; t : t \"*\" f | t \"/\" f | f ; \
             f : \"(\" e \")\" | \"id\" | \"num\" ;",
            GrammarFormat::Native,
            0,
            &Parallelism::sequential(),
        )
        .unwrap();
        assert!(big.approx_bytes() > small.approx_bytes());
    }

    #[test]
    fn record_round_trip_serves_identical_summaries_and_tables() {
        let a = CompiledArtifact::compile(
            "e : e \"+\" t | t ; t : t \"*\" f | f ; f : \"(\" e \")\" | \"x\" ;",
            GrammarFormat::Native,
            0x5_1337,
            &Parallelism::sequential(),
        )
        .unwrap();
        let record = a.to_record("%key native\n...");
        let b = CompiledArtifact::from_record(record);
        assert_eq!(b.fingerprint(), a.fingerprint());
        assert_eq!(b.state_count(), a.state_count());
        assert_eq!(b.production_count(), a.production_count());
        assert_eq!(b.terminal_count(), a.terminal_count());
        assert_eq!(b.adequacy(), a.adequacy());
        assert_eq!(b.relation_stats(), a.relation_stats());
        assert_eq!(b.table(), a.table());
        assert_eq!(b.compressed(), a.compressed());
        assert_eq!(b.approx_bytes(), a.approx_bytes());
        assert!(b.grammar().is_none(), "store loads carry no intermediates");
    }
}
