//! End-to-end pipeline tests spanning every crate: grammar text → LR(0) →
//! DeRemer–Pennello look-aheads → tables → lexer → parse trees.

use lalr::prelude::*;

fn pipeline(src: &str) -> (Grammar, ParseTable) {
    let grammar = parse_grammar(src).expect("grammar parses");
    let lr0 = Lr0Automaton::build(&grammar);
    let analysis = LalrAnalysis::compute(&grammar, &lr0);
    let table = build_table(
        &grammar,
        &lr0,
        analysis.lookaheads(),
        TableOptions::default(),
    );
    (grammar, table)
}

#[test]
fn expression_language_accepts_and_rejects() {
    let (_, table) = pipeline(
        "expr : expr \"+\" term | term ; term : term \"*\" atom | atom ; atom : \"(\" expr \")\" | NUM ;",
    );
    let lexer = Lexer::for_table(&table).number("NUM").build();
    let parser = Parser::new(&table);

    for ok in ["1", "1 + 2", "1 + 2 * 3", "((1)) * (2 + 3) + 4"] {
        let tree = parser.parse(lexer.tokenize(ok).unwrap());
        assert!(tree.is_ok(), "{ok} should parse: {tree:?}");
    }
    for bad in ["", "+", "1 +", "1 2", "(1", "1)"] {
        assert!(
            parser.parse(lexer.tokenize(bad).unwrap()).is_err(),
            "{bad} should be rejected"
        );
    }
}

#[test]
fn parse_tree_leaves_round_trip_tokens() {
    let (_, table) = pipeline("s : s \"a\" | \"b\" ;");
    let lexer = Lexer::for_table(&table).build();
    let parser = Parser::new(&table);
    let toks = lexer.tokenize("b a a a").unwrap();
    let tree = parser.parse(toks.clone()).unwrap();
    let leaves: Vec<String> = tree.leaves().iter().map(|t| t.text().to_string()).collect();
    let texts: Vec<String> = toks.iter().map(|t| t.text().to_string()).collect();
    assert_eq!(leaves, texts);
}

#[test]
fn json_documents_parse() {
    let entry = lalr::corpus::by_name("json").expect("corpus has json");
    let grammar = entry.grammar();
    let lr0 = Lr0Automaton::build(&grammar);
    let analysis = LalrAnalysis::compute(&grammar, &lr0);
    assert!(
        analysis.conflicts(&grammar, &lr0).is_empty(),
        "JSON is LALR(1)"
    );
    let table = build_table(
        &grammar,
        &lr0,
        analysis.lookaheads(),
        TableOptions::default(),
    );
    let lexer = Lexer::for_table(&table)
        .number("NUMBER")
        .string("STRING")
        .build();
    let parser = Parser::new(&table);

    let doc = r#"{ "name" : "lalr" , "tags" : [ 1 , 2.5 , TRUE , NULL ] , "nested" : { "empty" : { } } }"#;
    let tree = parser
        .parse(lexer.tokenize(doc).unwrap())
        .expect("valid JSON");
    assert!(tree.leaf_count() > 10);

    for bad in [r#"{ "a" : }"#, r#"[ 1 , ]"#, r#"{ "a" "b" }"#, r#"[ 1 2 ]"#] {
        assert!(
            parser.parse(lexer.tokenize(bad).unwrap()).is_err(),
            "{bad} must be rejected"
        );
    }
}

#[test]
fn compressed_and_dense_tables_agree_on_json() {
    let entry = lalr::corpus::by_name("json").expect("exists");
    let grammar = entry.grammar();
    let lr0 = Lr0Automaton::build(&grammar);
    let analysis = LalrAnalysis::compute(&grammar, &lr0);
    let table = build_table(
        &grammar,
        &lr0,
        analysis.lookaheads(),
        TableOptions::default(),
    );
    let compressed = CompressedTable::from_dense(&table);
    let lexer = Lexer::for_table(&table)
        .number("NUMBER")
        .string("STRING")
        .build();

    let dense_parser = Parser::new(&table);
    let source = lalr::runtime::CompressedSource::new(&compressed, &table);
    let compressed_parser = Parser::new(&source);
    for input in [
        "[ ]",
        "{ }",
        r#"[ { "k" : [ FALSE ] } , 2 ]"#,
        r#"[ 1, "#,  // invalid
        r#"{ "k" "#, // invalid
    ] {
        let toks = lexer.tokenize(input).unwrap();
        let a = dense_parser.parse(toks.clone());
        let b = compressed_parser.parse(toks);
        assert_eq!(a.is_ok(), b.is_ok(), "{input}");
        if let (Ok(x), Ok(y)) = (a, b) {
            assert_eq!(x, y, "{input}");
        }
    }
}

#[test]
fn pascal_fragment_parses_with_keywords() {
    let entry = lalr::corpus::by_name("pascal").expect("exists");
    let grammar = entry.grammar();
    let lr0 = Lr0Automaton::build(&grammar);
    let analysis = LalrAnalysis::compute(&grammar, &lr0);
    // Pascal has the dangling-else conflict; yacc defaults shift it away.
    let table = build_table(
        &grammar,
        &lr0,
        analysis.lookaheads(),
        TableOptions::default(),
    );
    let lexer = Lexer::for_table(&table)
        .number("NUMBER")
        .identifier("IDENT")
        .string("STRING")
        .build();
    let parser = Parser::new(&table);

    let program = r#"
        PROGRAM demo ;
        VAR x , y : integer ;
        BEGIN
            x ASSIGN 1 ;
            WHILE x < 10 DO
                BEGIN
                    x ASSIGN x + 1 ;
                    IF x = 5 THEN y ASSIGN x ELSE y ASSIGN 0
                END
        END .
    "#;
    let tree = parser
        .parse(lexer.tokenize(program).unwrap())
        .expect("valid Pascal fragment");
    assert!(tree.node_count() > 20);
}

#[test]
fn classification_matches_corpus_expectations() {
    use lalr::core::GrammarClass;
    let expect = [
        ("lr0_matched", GrammarClass::Lr0),
        ("slr_expr", GrammarClass::Slr1),
        ("lalr_not_slr", GrammarClass::Lalr1),
        ("lr1_not_lalr", GrammarClass::Lr1),
        ("dangling_else", GrammarClass::NotLr1),
        ("nqlalr_witness", GrammarClass::Lalr1),
        ("json", GrammarClass::Lr0),
        ("ada_subset", GrammarClass::Lalr1),
    ];
    for (name, class) in expect {
        let g = lalr::corpus::by_name(name).expect("exists").grammar();
        assert_eq!(classify(&g).class, class, "{name}");
    }
}

#[test]
fn reads_cycle_grammar_diagnosed_not_lr_k() {
    let g = lalr::corpus::by_name("reads_cycle")
        .expect("exists")
        .grammar();
    let lr0 = Lr0Automaton::build(&g);
    let analysis = LalrAnalysis::compute(&g, &lr0);
    assert!(analysis.grammar_not_lr_k());
    assert!(analysis.reads_traversal().nontrivial_sccs > 0);
}
