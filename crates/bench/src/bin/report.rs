//! Prints the paper-style evaluation tables.
//!
//! ```text
//! cargo run --release -p lalr-bench --bin report            # all
//! cargo run --release -p lalr-bench --bin report -- table2  # one
//! ```

use lalr_bench::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let runs = args
        .get(1)
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(9);

    let mut printed = false;
    if matches!(which, "all" | "table1") {
        println!("{}", report::table1());
        printed = true;
    }
    if matches!(which, "all" | "table2") {
        println!("{}", report::table2(runs));
        printed = true;
    }
    if matches!(which, "all" | "table3") {
        println!("{}", report::table3());
        printed = true;
    }
    if matches!(which, "all" | "table4") {
        println!("{}", report::table4(runs));
        printed = true;
    }
    if matches!(which, "all" | "table5") {
        println!("{}", report::table5());
        printed = true;
    }
    if matches!(which, "all" | "table7") {
        println!("{}", report::table7());
        printed = true;
    }
    if matches!(which, "all" | "table9") {
        println!("{}", report::table9());
        printed = true;
    }
    if matches!(which, "all" | "table12") {
        println!("{}", report::table12());
        printed = true;
    }
    if matches!(which, "all" | "figure1") {
        println!("{}", report::figure1(runs));
        printed = true;
    }
    if matches!(which, "all" | "figure2") {
        println!("{}", report::figure2());
        printed = true;
    }
    if !printed {
        eprintln!(
            "usage: report [all|table1|table2|table3|table4|table5|table7|table9|table12|\
             figure1|figure2] [runs]"
        );
        std::process::exit(2);
    }
}
