//! The TCP daemon: a `std::net` accept loop over the service.
//!
//! Framing is newline-delimited JSON (one request line in, one response
//! line out; see [`crate::protocol`]). Each connection gets its own
//! thread but compute happens on the service's worker pool, so the
//! concurrency of actual compiles is bounded by the pool regardless of
//! connection count. Connections beyond the cap receive an
//! `unavailable` error line and are closed immediately.
//!
//! Shutdown is graceful and in-band: a `{"op":"shutdown"}` request is
//! acknowledged, the accept loop is woken by a loopback connection, open
//! connections are joined, and [`Daemon::join`] returns a summary.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::protocol::{request_from_value, response_to_line};
use crate::service::{Request, Response, Service, ServiceConfig};
use crate::ServiceError;

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Address to bind (e.g. `127.0.0.1:4077`; port 0 picks one).
    pub addr: String,
    /// Maximum concurrently open connections.
    pub max_connections: usize,
    /// Per-connection read timeout; an idle connection is closed.
    pub read_timeout: Duration,
    /// Maximum request line length in bytes.
    pub max_line_bytes: usize,
    /// The underlying service configuration.
    pub service: ServiceConfig,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:4077".to_string(),
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            max_line_bytes: 4 << 20,
            service: ServiceConfig::default(),
        }
    }
}

/// What a daemon did, reported by [`Daemon::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonSummary {
    /// Connections accepted (including over-cap rejections).
    pub connections: u64,
    /// Requests the service handled.
    pub requests: u64,
}

/// A running daemon.
pub struct Daemon {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: JoinHandle<DaemonSummary>,
}

impl Daemon {
    /// Binds the address and starts the accept loop on a background
    /// thread.
    pub fn start(config: DaemonConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("lalr-daemon-accept".to_string())
            .spawn(move || accept_loop(listener, addr, &config, &flag))
            .expect("spawn daemon accept thread");
        Ok(Daemon {
            addr,
            shutdown,
            handle,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown from outside the protocol (tests, signal
    /// handlers). Idempotent; the in-band `shutdown` op does the same.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        wake_acceptor(self.addr);
    }

    /// Waits for the accept loop to finish and returns the summary.
    pub fn join(self) -> DaemonSummary {
        self.handle.join().expect("daemon accept thread panicked")
    }
}

/// Nudges the blocking `accept` so it re-checks the shutdown flag.
fn wake_acceptor(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
}

fn accept_loop(
    listener: TcpListener,
    addr: SocketAddr,
    config: &DaemonConfig,
    shutdown: &Arc<AtomicBool>,
) -> DaemonSummary {
    let service = Arc::new(Service::new(config.service.clone()));
    let active = Arc::new(AtomicUsize::new(0));
    let connections = AtomicU64::new(0);
    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();

    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        connections.fetch_add(1, Ordering::Relaxed);
        if active.load(Ordering::SeqCst) >= config.max_connections {
            reject_over_cap(stream);
            continue;
        }
        conn_threads.retain(|h| !h.is_finished());
        active.fetch_add(1, Ordering::SeqCst);
        let service = Arc::clone(&service);
        let conn_active = Arc::clone(&active);
        let shutdown = Arc::clone(shutdown);
        let read_timeout = config.read_timeout;
        let max_line = config.max_line_bytes;
        let spawned = std::thread::Builder::new()
            .name("lalr-daemon-conn".to_string())
            .spawn(move || {
                serve_connection(stream, addr, &service, &shutdown, read_timeout, max_line);
                conn_active.fetch_sub(1, Ordering::SeqCst);
            });
        match spawned {
            Ok(h) => conn_threads.push(h),
            Err(_) => {
                active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    for h in conn_threads {
        let _ = h.join();
    }
    let requests = service.stats().requests;
    service.shutdown();
    DaemonSummary {
        connections: connections.load(Ordering::Relaxed),
        requests,
    }
}

fn reject_over_cap(mut stream: TcpStream) {
    let line = response_to_line(&Response::Error(ServiceError::Unavailable(
        "connection limit reached".to_string(),
    )));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = writeln!(stream, "{line}");
}

fn serve_connection(
    stream: TcpStream,
    daemon_addr: SocketAddr,
    service: &Service,
    shutdown: &AtomicBool,
    read_timeout: Duration,
    max_line: usize,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_write_timeout(Some(read_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    // The `take` limit bounds memory for a single request line; it is
    // reset before each line so the cap is per-line, not per-connection.
    let mut reader = BufReader::new(stream.take(max_line as u64 + 1));
    let mut line = String::new();

    loop {
        line.clear();
        reader.get_mut().set_limit(max_line as u64 + 1);
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) if line.len() > max_line => {
                respond(
                    &mut writer,
                    &Response::Error(ServiceError::TooLarge {
                        size: line.len(),
                        limit: max_line,
                    }),
                );
                // Drain through the end of the oversized line before
                // hanging up: closing with unread bytes queued sends an
                // RST, which can tear the error response away from a
                // client still mid-write.
                drain_line(&mut reader, max_line);
                return;
            }
            Ok(_) => {}
            Err(_) => return, // read timeout or transport failure
        }
        if line.trim().is_empty() {
            continue;
        }
        let parsed = serde_json::from_str(line.trim_end())
            .map_err(|e| ServiceError::BadRequest(e.to_string()))
            .and_then(|v| request_from_value(&v));
        let (request, deadline) = match parsed {
            Ok(p) => p,
            Err(e) => {
                if !respond(&mut writer, &Response::Error(e)) {
                    return;
                }
                continue;
            }
        };
        let is_shutdown = matches!(request, Request::Shutdown);
        let response = service.call(request, deadline);
        let written = respond(&mut writer, &response);
        if is_shutdown {
            shutdown.store(true, Ordering::SeqCst);
            wake_acceptor(daemon_addr);
            return;
        }
        if !written {
            return;
        }
    }
}

/// Discards input up to and including the next newline (or EOF /
/// transport error), without retaining the bytes. Used after an
/// oversized request so the socket closes cleanly instead of resetting.
fn drain_line(reader: &mut BufReader<std::io::Take<TcpStream>>, max_line: usize) {
    loop {
        reader.get_mut().set_limit(max_line as u64 + 1);
        let buf = match reader.fill_buf() {
            Ok([]) => return, // EOF
            Ok(buf) => buf,
            Err(_) => return, // read timeout or transport failure
        };
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                let consume = i + 1;
                reader.consume(consume);
                return;
            }
            None => {
                let consume = buf.len();
                reader.consume(consume);
            }
        }
    }
}

fn respond(writer: &mut TcpStream, response: &Response) -> bool {
    writeln!(writer, "{}", response_to_line(response)).is_ok()
}
