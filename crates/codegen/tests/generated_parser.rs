//! Golden-file test: the generated expression parser is checked in as a
//! fixture, compiled into this test binary via `include!`, and driven
//! against the interpretive runtime as an oracle.
//!
//! Regenerate the fixture after codegen changes with:
//!
//! ```text
//! LALR_REGEN=1 cargo test -p lalr-codegen --test generated_parser
//! ```

use lalr_automata::Lr0Automaton;
use lalr_codegen::generate_module;
use lalr_core::LalrAnalysis;
use lalr_grammar::Grammar;
use lalr_tables::{build_table, ParseTable, TableOptions};

/// The compiled-in generated parser.
#[allow(dead_code)]
mod expr_parser {
    include!("fixtures/expr_parser.rs");
}

fn expr_grammar() -> Grammar {
    lalr_corpus::by_name("expr")
        .expect("corpus has expr")
        .grammar()
}

fn expr_table(grammar: &Grammar) -> ParseTable {
    let lr0 = Lr0Automaton::build(grammar);
    let la = LalrAnalysis::compute(grammar, &lr0).into_lookaheads();
    build_table(grammar, &lr0, &la, TableOptions::default())
}

#[test]
fn fixture_is_up_to_date() {
    let grammar = expr_grammar();
    let generated = generate_module(&expr_table(&grammar), "expr_parser");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/expr_parser.rs");
    if std::env::var_os("LALR_REGEN").is_some() {
        std::fs::write(path, &generated).expect("write fixture");
    }
    let on_disk = std::fs::read_to_string(path)
        .expect("fixture missing — run with LALR_REGEN=1 to create tests/fixtures/expr_parser.rs");
    assert_eq!(
        on_disk, generated,
        "fixture out of date — rerun with LALR_REGEN=1"
    );
}

/// Encodes a space-separated sentence of the expr grammar into terminal
/// indices using the generated module's own name table.
fn encode(sentence: &str) -> Vec<u32> {
    sentence
        .split_whitespace()
        .map(|w| {
            let name = if w.chars().all(|c| c.is_ascii_digit()) {
                "NUM"
            } else {
                w
            };
            expr_parser::terminal_index(name).unwrap_or_else(|| panic!("unknown terminal {w}"))
        })
        .collect()
}

#[test]
fn generated_parser_accepts_valid_expressions() {
    for ok in ["1", "1 + 2", "1 + 2 * 3", "( 1 + 2 ) * 3", "( ( 1 ) )"] {
        assert!(expr_parser::accepts(&encode(ok)), "{ok}");
    }
}

#[test]
fn generated_parser_rejects_invalid_expressions() {
    for bad in ["", "+", "1 +", "1 2", "( 1", "1 )", "* 1"] {
        assert!(!expr_parser::accepts(&encode(bad)), "{bad}");
    }
}

#[test]
fn generated_parser_reports_error_positions() {
    let err = expr_parser::parse(&encode("1 + + 2")).unwrap_err();
    assert_eq!(err.position, 2, "the second '+' is the offender");
    let err = expr_parser::parse(&encode("1 +")).unwrap_err();
    assert_eq!(err.position, 2, "end of input");
}

#[test]
fn generated_parser_agrees_with_runtime_on_generated_sentences() {
    let grammar = expr_grammar();
    let table = expr_table(&grammar);
    let runtime = lalr_runtime::Parser::new(&table);
    for (i, sentence) in lalr_corpus::sentences::generate_many(&grammar, 99, 60, 30)
        .into_iter()
        .enumerate()
    {
        let indices: Vec<u32> = sentence.iter().map(|t| t.index() as u32).collect();
        let tokens: Vec<lalr_runtime::Token> = sentence
            .iter()
            .enumerate()
            .map(|(k, &t)| lalr_runtime::Token::new(t.index() as u32, grammar.terminal_name(t), k))
            .collect();
        let gen_ok = expr_parser::accepts(&indices);
        let rt_ok = runtime.parse(tokens).is_ok();
        assert_eq!(gen_ok, rt_ok, "sentence #{i} disagreement");
        assert!(gen_ok, "sampled sentences are in the language");
    }
}

/// A postfix evaluator driven purely by the generated visitor hooks —
/// semantic actions without any runtime dependency.
struct Eval<'a> {
    tokens: &'a [&'a str],
    stack: Vec<f64>,
}

impl expr_parser::Visitor for Eval<'_> {
    fn shift(&mut self, terminal: u32, position: usize) {
        if expr_parser::TERMINAL_NAMES[terminal as usize] == "NUM" {
            self.stack
                .push(self.tokens[position].parse().expect("numeric token"));
        }
    }

    fn reduce(&mut self, production: u32) {
        match expr_parser::PRODUCTION_DISPLAY[production as usize] {
            "expr -> expr + term" => {
                let b = self.stack.pop().unwrap();
                let a = self.stack.pop().unwrap();
                self.stack.push(a + b);
            }
            "term -> term * factor" => {
                let b = self.stack.pop().unwrap();
                let a = self.stack.pop().unwrap();
                self.stack.push(a * b);
            }
            _ => {} // unit and paren productions pass the value through
        }
    }
}

#[test]
fn visitor_hooks_evaluate_expressions() {
    for (input, expected) in [
        ("7", 7.0),
        ("1 + 2", 3.0),
        ("2 * 3 + 4", 10.0),
        ("2 * ( 3 + 4 )", 14.0),
        ("1 + 2 * 3 + 4 * 5", 27.0),
    ] {
        let tokens: Vec<&str> = input.split_whitespace().collect();
        let indices = encode(input);
        let mut eval = Eval {
            tokens: &tokens,
            stack: Vec::new(),
        };
        expr_parser::parse_with(&indices, &mut eval).expect("valid expression");
        assert_eq!(eval.stack, vec![expected], "{input}");
    }
}

#[test]
fn generated_stats_count_shifts_and_reductions() {
    let stats = expr_parser::parse(&encode("1 + 2")).unwrap();
    assert_eq!(stats.shifts, 3);
    // 1→factor→term→expr(3), 2→factor→term(2)... plus e→e+t: exactly 6.
    assert_eq!(stats.reductions, 6);
}
