//! Disjoint mutable row bands of a [`BitMatrix`](crate::BitMatrix).
//!
//! Parallel phases of the look-ahead pipeline scatter per-worker results
//! into one shared matrix. Rust's aliasing rules forbid two `&mut BitMatrix`
//! borrows, so the matrix instead splits itself into [`RowsMut`] bands —
//! each a `&mut` borrow of a *disjoint* word range — via
//! [`BitMatrix::split_rows_mut`](crate::BitMatrix::split_rows_mut) and
//! [`BitMatrix::partition_rows_mut`](crate::BitMatrix::partition_rows_mut).
//!
//! # Safety invariants (upheld without `unsafe`)
//!
//! * A band covers a contiguous global row range `[first_row, first_row +
//!   len)` and owns exactly those rows' words; bands from one partition
//!   call never overlap, because they are carved with `split_at_mut`.
//! * All row arguments are **global** row indices; a band panics on rows
//!   outside its range instead of silently remapping, so a worker that is
//!   handed the wrong band fails loudly.
//! * Sending each band to a different scoped thread is sound: `RowsMut`
//!   is `Send` because it is just a `&mut [usize]` plus bookkeeping.

use crate::{kernels, BITS};

/// A mutable view of a contiguous band of [`BitMatrix`](crate::BitMatrix)
/// rows, addressed by global row index.
#[derive(Debug)]
pub struct RowsMut<'a> {
    words: &'a mut [usize],
    first_row: usize,
    rows: usize,
    row_words: usize,
    cols: usize,
}

impl<'a> RowsMut<'a> {
    pub(crate) fn new(
        words: &'a mut [usize],
        first_row: usize,
        rows: usize,
        row_words: usize,
        cols: usize,
    ) -> Self {
        debug_assert_eq!(words.len(), rows * row_words);
        RowsMut {
            words,
            first_row,
            rows,
            row_words,
            cols,
        }
    }

    /// Global index of the first row in this band.
    #[inline]
    pub fn first_row(&self) -> usize {
        self.first_row
    }

    /// Number of rows in this band (may be zero).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Returns `true` if the band holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Returns `true` if global `row` belongs to this band.
    #[inline]
    pub fn contains_row(&self, row: usize) -> bool {
        (self.first_row..self.first_row + self.rows).contains(&row)
    }

    #[inline]
    fn row_range(&self, row: usize) -> std::ops::Range<usize> {
        assert!(
            self.contains_row(row),
            "row {row} outside band {}..{}",
            self.first_row,
            self.first_row + self.rows
        );
        let start = (row - self.first_row) * self.row_words;
        start..start + self.row_words
    }

    /// Sets bit `(row, col)`, returning `true` if it was newly set.
    ///
    /// # Panics
    ///
    /// Panics if `row` is outside the band or `col` is out of range.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize) -> bool {
        assert!(col < self.cols, "col {col} out of range 0..{}", self.cols);
        let r = self.row_range(row);
        let w = &mut self.words[r][col / BITS];
        let mask = 1usize << (col % BITS);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Tests bit `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is outside the band. Out-of-range `col` reads as
    /// `false`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        if col >= self.cols {
            return false;
        }
        let r = self.row_range(row);
        self.words[r][col / BITS] & (1usize << (col % BITS)) != 0
    }

    /// Borrows the raw words of global `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is outside the band.
    pub fn row_words(&self, row: usize) -> &[usize] {
        let r = self.row_range(row);
        &self.words[r]
    }

    /// ORs an external word slice into global `row`; returns `true` if the
    /// row changed.
    ///
    /// # Panics
    ///
    /// Panics if `row` is outside the band or `src` is shorter than a row.
    pub fn union_row_with_words(&mut self, row: usize, src: &[usize]) -> bool {
        let r = self.row_range(row);
        let changed = kernels::or_into(&mut self.words[r.clone()], src);
        kernels::debug_assert_tail_clear(&self.words[r], self.cols);
        changed
    }

    /// Overwrites global `row` with an external word slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is outside the band or `src` has the wrong length.
    pub fn copy_row_from_words(&mut self, row: usize, src: &[usize]) {
        let r = self.row_range(row);
        assert_eq!(src.len(), self.row_words, "source has the wrong length");
        kernels::copy(&mut self.words[r.clone()], src);
        kernels::debug_assert_tail_clear(&self.words[r], self.cols);
    }
}

#[cfg(test)]
mod tests {
    use crate::BitMatrix;

    #[test]
    fn split_preserves_global_indexing() {
        let mut m = BitMatrix::new(5, 70);
        let (mut lo, mut hi) = m.split_rows_mut(2);
        assert_eq!(lo.first_row(), 0);
        assert_eq!(lo.len(), 2);
        assert_eq!(hi.first_row(), 2);
        assert_eq!(hi.len(), 3);
        assert!(lo.set(1, 69));
        assert!(hi.set(2, 0));
        assert!(hi.set(4, 68));
        assert!(m.get(1, 69));
        assert!(m.get(2, 0));
        assert!(m.get(4, 68));
    }

    #[test]
    fn partition_covers_all_rows_exactly_once() {
        let mut m = BitMatrix::new(7, 64);
        let bands = m.partition_rows_mut(3);
        assert_eq!(bands.len(), 3);
        let sizes: Vec<usize> = bands.iter().map(|b| b.len()).collect();
        assert_eq!(sizes, vec![3, 2, 2]);
        let mut next = 0;
        for b in &bands {
            assert_eq!(b.first_row(), next);
            next += b.len();
        }
        assert_eq!(next, 7);
    }

    #[test]
    fn partition_more_parts_than_rows_yields_empty_tail() {
        let mut m = BitMatrix::new(2, 10);
        let bands = m.partition_rows_mut(4);
        let sizes: Vec<usize> = bands.iter().map(|b| b.len()).collect();
        assert_eq!(sizes, vec![1, 1, 0, 0]);
        assert!(bands[3].is_empty());
    }

    #[test]
    fn scatter_from_scoped_threads_matches_sequential() {
        let rows = 16;
        let cols = 130;
        let fill = |row: usize| -> Vec<usize> {
            let mut one = BitMatrix::new(1, cols);
            one.set(0, row % cols);
            one.set(0, (row * 7) % cols);
            one.row_words(0).to_vec()
        };

        let mut seq = BitMatrix::new(rows, cols);
        for r in 0..rows {
            seq.union_row_with_words(r, &fill(r));
        }

        let mut par = BitMatrix::new(rows, cols);
        let bands = par.partition_rows_mut(4);
        std::thread::scope(|scope| {
            for mut band in bands {
                scope.spawn(move || {
                    for r in band.first_row()..band.first_row() + band.len() {
                        band.union_row_with_words(r, &fill(r));
                    }
                });
            }
        });
        assert_eq!(seq, par);
    }

    #[test]
    #[should_panic(expected = "outside band")]
    fn out_of_band_row_panics() {
        let mut m = BitMatrix::new(4, 10);
        let (mut lo, _hi) = m.split_rows_mut(2);
        lo.set(2, 0);
    }

    #[test]
    #[should_panic(expected = "zero bands")]
    fn zero_parts_panics() {
        let mut m = BitMatrix::new(4, 10);
        let _ = m.partition_rows_mut(0);
    }
}
