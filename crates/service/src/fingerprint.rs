//! Content addressing for grammar texts.
//!
//! The cache key is a 64-bit FxHash fingerprint of the *normalized*
//! grammar text, confirmed by full-text comparison on every lookup — the
//! same hash-then-confirm idiom the LR(0) kernel interner uses
//! (`crates/automata/src/lr0.rs`), lifted from item sets to whole
//! grammars. The fingerprint routes to a bucket; the normalized text is
//! the identity. A colliding fingerprint therefore costs one extra string
//! compare, never a wrong artifact.

use std::hash::Hasher;

use rustc_hash::FxHasher;

/// Normalizes a grammar text for fingerprinting.
///
/// Deliberately conservative: it must never map two grammars with
/// different semantics to the same text, so it only strips what the
/// grammar lexer provably ignores *between* lines — leading/trailing
/// whitespace per line, blank lines, and `\r`. Quoted literals cannot
/// span lines (the lexer rejects a newline inside a literal), so a line
/// boundary is always outside a literal and per-line trimming is safe.
/// Comments and interior spacing are left alone: two differently
/// commented copies of one grammar get separate cache entries
/// (under-sharing, never mis-sharing).
pub fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(line);
    }
    out
}

/// The default fingerprinter: FxHash64 over the normalized text.
pub fn fx_fingerprint(normalized: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(normalized.as_bytes());
    h.write_u8(0xff); // length-extension terminator
    h.finish()
}

/// Renders a fingerprint the way the wire protocol carries it (JSON
/// numbers are only exact to 2^53, so fingerprints travel as hex).
pub fn format_fingerprint(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Parses a wire-format fingerprint back to its value. Accepts exactly
/// what [`format_fingerprint`] emits: 16 lowercase hex digits.
pub fn parse_fingerprint(s: &str) -> Option<u64> {
    if s.len() != 16
        || !s
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_is_line_conservative() {
        let a = "e : e \"+\" t | t ;\n  t : \"x\" ;  \n\n";
        let b = "\r\n   e : e \"+\" t | t ;\r\nt : \"x\" ;";
        assert_eq!(normalize(a), normalize(b));
        assert_eq!(normalize(a), "e : e \"+\" t | t ;\nt : \"x\" ;");
    }

    #[test]
    fn interior_spacing_and_comments_are_preserved() {
        // Conservative: these parse identically but fingerprint apart.
        assert_ne!(normalize("e : \"x\" ;"), normalize("e :  \"x\" ;"));
        assert_ne!(normalize("e : \"x\" ;"), normalize("e : \"x\" ; // c"));
        // Literals keep their exact content.
        assert!(normalize("e : \" spaced \" ;").contains("\" spaced \""));
    }

    #[test]
    fn fingerprints_differ_for_different_texts() {
        let a = fx_fingerprint("e : \"x\" ;");
        let b = fx_fingerprint("e : \"y\" ;");
        assert_ne!(a, b);
        assert_eq!(a, fx_fingerprint("e : \"x\" ;"), "deterministic");
    }

    #[test]
    fn fingerprint_formatting_is_fixed_width_hex() {
        assert_eq!(format_fingerprint(0x2a), "000000000000002a");
        assert_eq!(format_fingerprint(u64::MAX), "ffffffffffffffff");
    }

    #[test]
    fn fingerprints_round_trip_through_the_wire_format() {
        for fp in [0u64, 0x2a, 1 << 53, u64::MAX, fx_fingerprint("e : \"x\" ;")] {
            assert_eq!(parse_fingerprint(&format_fingerprint(fp)), Some(fp));
        }
        for bad in [
            "",
            "2a",
            "000000000000002A",
            "zzzzzzzzzzzzzzzz",
            "0x00000000000002a",
        ] {
            assert_eq!(parse_fingerprint(bad), None, "{bad:?}");
        }
    }
}
