//! The content-addressed store directory: crash-safe publishes, checked
//! loads, and the `ls`/`verify`/`gc` maintenance operations.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

use lalr_chaos::{Fault, FaultInjector};
use lalr_net::Mmap;

use crate::format::{self, ArtifactRecord};

/// Artifact file extension.
const EXT: &str = "lalr";

/// A directory of artifacts, one file per fingerprint
/// (`<fp as 16 hex digits>.lalr`).
///
/// Publishes are crash-safe: the record is written to a process-unique
/// temp file, fsynced, and atomically renamed over the final name — a
/// reader never observes a half-written artifact under the final name,
/// and concurrent publishes of one fingerprint are idempotent (both
/// writers produce complete files; the last rename wins). Loads verify
/// the header checksum before decoding, so torn or bit-rotted files
/// degrade to [`Loaded::Corrupt`] (and thence a recompile), never to
/// garbage tables.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    faults: FaultInjector,
    /// Per-process temp-name disambiguator for concurrent publishes.
    temp_seq: AtomicU64,
}

/// One load outcome.
#[derive(Debug)]
pub enum Loaded {
    /// Integrity-checked record whose key confirmed.
    Hit(Box<ArtifactRecord>),
    /// No file, or a valid file for a different key (fingerprint
    /// collision).
    Miss,
    /// A file exists but failed integrity or decode checks.
    Corrupt,
}

/// One `store ls` row.
#[derive(Debug, Clone)]
pub struct StoreEntry {
    /// Fingerprint parsed from the file name.
    pub fingerprint: u64,
    /// File size in bytes.
    pub bytes: u64,
    /// Seconds since last modification (the LRU age `gc` uses).
    pub age: Duration,
    /// Full path.
    pub path: PathBuf,
}

/// `store verify` totals.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Files that passed checksum + decode.
    pub ok: usize,
    /// Files that failed, with the reason.
    pub corrupt: Vec<(PathBuf, String)>,
}

/// `store gc` totals.
#[derive(Debug, Clone, Copy, Default)]
pub struct GcReport {
    /// Artifact files removed (older than the age limit).
    pub removed: usize,
    /// Artifact files kept.
    pub kept: usize,
    /// Stale temp files swept.
    pub temps: usize,
    /// Bytes reclaimed.
    pub reclaimed_bytes: u64,
}

impl Store {
    /// Opens (creating if needed) a store directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Store> {
        Store::with_faults(dir, FaultInjector::disabled())
    }

    /// [`Store::open`] with `store.write` / `store.read` failpoints
    /// armed.
    pub fn with_faults(dir: impl Into<PathBuf>, faults: FaultInjector) -> io::Result<Store> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Store {
            dir,
            faults,
            temp_seq: AtomicU64::new(0),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The final path for a fingerprint.
    pub fn path_for(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{fingerprint:016x}.{EXT}"))
    }

    /// Publishes `record`, overwriting any previous artifact with the
    /// same fingerprint.
    ///
    /// The `store.write` failpoint models publish-path storage faults:
    /// `error` fails cleanly before any bytes land (a crash before the
    /// rename — the old artifact, if any, survives untouched);
    /// `truncate` and `partial` land a torn file under the final name;
    /// `garbage` lands a bit-flipped file. The torn/garbage outcomes
    /// are exactly what the load-path checksum must catch.
    pub fn publish(&self, record: &ArtifactRecord) -> io::Result<()> {
        let mut bytes = format::encode(record);
        match self.faults.at("store.write") {
            Some(Fault::Error) => {
                // Model a crash mid-publish: a stale temp file is left
                // behind (gc sweeps it) and the final name is untouched.
                let _ = self.write_temp(record.fingerprint, &bytes[..bytes.len() / 2]);
                return Err(lalr_chaos::injected_io_error("store.write"));
            }
            Some(Fault::Truncate) => bytes.truncate(bytes.len() / 2),
            Some(Fault::PartialWrite) => {
                let keep = bytes.len().saturating_sub(8);
                bytes.truncate(keep);
            }
            Some(Fault::Garbage) => {
                // Flip bits in the middle of the payload.
                let mid = bytes.len() / 2;
                for b in bytes.iter_mut().skip(mid).take(16) {
                    *b ^= 0xA5;
                }
            }
            Some(Fault::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            _ => {}
        }
        let temp = self.write_temp(record.fingerprint, &bytes)?;
        let final_path = self.path_for(record.fingerprint);
        fs::rename(&temp, &final_path)?;
        // Best effort: persist the directory entry too.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    fn write_temp(&self, fingerprint: u64, bytes: &[u8]) -> io::Result<PathBuf> {
        let seq = self.temp_seq.fetch_add(1, Ordering::Relaxed);
        let temp = self.dir.join(format!(
            ".{fingerprint:016x}.{}.{seq}.tmp",
            std::process::id()
        ));
        let mut f = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&temp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        Ok(temp)
    }

    /// Loads the artifact for `fingerprint`.
    ///
    /// With `expected_key` the stored key must match exactly
    /// (hash-then-confirm, like the in-memory cache); a valid file for
    /// a different key is a [`Loaded::Miss`]. The `store.read`
    /// failpoint corrupts the in-memory view of the checksum, so an
    /// armed read behaves exactly like on-disk corruption.
    pub fn load(&self, fingerprint: u64, expected_key: Option<&str>) -> Loaded {
        let path = self.path_for(fingerprint);
        let file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Loaded::Miss,
            Err(_) => return Loaded::Corrupt,
        };
        let map = match Mmap::map(&file) {
            Ok(m) => m,
            Err(_) => return Loaded::Corrupt,
        };
        let mut owned: Option<Vec<u8>> = None;
        match self.faults.at("store.read") {
            Some(Fault::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(_) => {
                // Any other armed fault models read-path corruption:
                // flip a byte inside the checksum field.
                let mut c = map.to_vec();
                if c.len() > 24 {
                    c[24] ^= 0xFF;
                }
                owned = Some(c);
            }
            None => {}
        }
        let bytes: &[u8] = owned.as_deref().unwrap_or(&map);
        let record = match format::decode(bytes) {
            Ok(r) => r,
            Err(_) => return Loaded::Corrupt,
        };
        if record.fingerprint != fingerprint {
            return Loaded::Corrupt;
        }
        if expected_key.is_some_and(|k| k != record.key) {
            return Loaded::Miss;
        }
        Loaded::Hit(Box::new(record))
    }

    /// Lists artifacts, sorted by fingerprint.
    pub fn ls(&self) -> io::Result<Vec<StoreEntry>> {
        let mut out = Vec::new();
        let now = SystemTime::now();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let Some(fp) = parse_artifact_name(&entry.file_name().to_string_lossy()) else {
                continue;
            };
            let meta = entry.metadata()?;
            let age = meta
                .modified()
                .ok()
                .and_then(|m| now.duration_since(m).ok())
                .unwrap_or_default();
            out.push(StoreEntry {
                fingerprint: fp,
                bytes: meta.len(),
                age,
                path: entry.path(),
            });
        }
        out.sort_by_key(|e| e.fingerprint);
        Ok(out)
    }

    /// Integrity-checks every artifact file.
    pub fn verify(&self) -> io::Result<VerifyReport> {
        let mut report = VerifyReport::default();
        for entry in self.ls()? {
            let result = File::open(&entry.path)
                .map_err(|e| e.to_string())
                .and_then(|f| Mmap::map(&f).map_err(|e| e.to_string()))
                .and_then(|m| format::decode(&m).map_err(|e| e.to_string()));
            match result {
                Ok(record) if record.fingerprint == entry.fingerprint => report.ok += 1,
                Ok(_) => report
                    .corrupt
                    .push((entry.path, "fingerprint/file-name mismatch".to_string())),
                Err(e) => report.corrupt.push((entry.path, e)),
            }
        }
        Ok(report)
    }

    /// Removes artifacts whose last use (mtime — refreshed on publish)
    /// is older than `max_age`, plus any stale temp files.
    pub fn gc(&self, max_age: Duration) -> io::Result<GcReport> {
        let mut report = GcReport::default();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().to_string();
            if name.ends_with(".tmp") && name.starts_with('.') {
                let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
                if fs::remove_file(entry.path()).is_ok() {
                    report.temps += 1;
                    report.reclaimed_bytes += bytes;
                }
                continue;
            }
            if parse_artifact_name(&name).is_none() {
                continue;
            }
            let meta = entry.metadata()?;
            let age = meta
                .modified()
                .ok()
                .and_then(|m| SystemTime::now().duration_since(m).ok())
                .unwrap_or_default();
            if age > max_age {
                if fs::remove_file(entry.path()).is_ok() {
                    report.removed += 1;
                    report.reclaimed_bytes += meta.len();
                }
            } else {
                report.kept += 1;
            }
        }
        Ok(report)
    }
}

/// Parses `<16 hex>.lalr` file names; anything else is ignored by
/// maintenance ops (dotfiles, temps, strangers).
fn parse_artifact_name(name: &str) -> Option<u64> {
    let hex = name.strip_suffix(&format!(".{EXT}"))?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalr_chaos::{FaultPlan, Trigger};

    fn temp_store_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lalr-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn record(key: &str, fp: u64) -> ArtifactRecord {
        crate::format::tests::sample_record("e : e \"+\" t | t ; t : \"x\" ;", key, fp)
    }

    #[test]
    fn publish_then_load_round_trips() {
        let dir = temp_store_dir("roundtrip");
        let store = Store::open(&dir).unwrap();
        let rec = record("%key native\ng1", 0xABCD);
        store.publish(&rec).unwrap();
        match store.load(0xABCD, Some("%key native\ng1")) {
            Loaded::Hit(back) => assert_eq!(*back, rec),
            other => panic!("expected hit, got {other:?}"),
        }
        // Wrong key (collision) is a miss, not a corrupt.
        assert!(matches!(
            store.load(0xABCD, Some("%key native\nother")),
            Loaded::Miss
        ));
        // Unknown fingerprint is a miss.
        assert!(matches!(store.load(0x1111, None), Loaded::Miss));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_publish_is_detected_and_old_artifact_survives_clean_failure() {
        let dir = temp_store_dir("torn");
        // First publish clean, second with an injected clean failure,
        // third with a torn write.
        let faults = FaultPlan::new(7)
            .rule("store.write", Fault::Error, Trigger::OnHits(vec![2]))
            .rule("store.write", Fault::Truncate, Trigger::OnHits(vec![3]))
            .build();
        let store = Store::with_faults(&dir, faults.clone()).unwrap();
        let rec = record("k", 0x42);
        store.publish(&rec).unwrap();

        // Clean failure: the old artifact still loads.
        assert!(store.publish(&rec).is_err());
        assert!(matches!(store.load(0x42, Some("k")), Loaded::Hit(_)));

        // Torn write lands under the final name: detected, never garbage.
        store.publish(&rec).unwrap();
        assert!(matches!(store.load(0x42, Some("k")), Loaded::Corrupt));
        assert_eq!(faults.injected_at("store.write"), 2);

        // Re-publish heals.
        store.publish(&rec).unwrap();
        assert!(matches!(store.load(0x42, Some("k")), Loaded::Hit(_)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_failpoint_behaves_like_disk_corruption() {
        let dir = temp_store_dir("readfault");
        let faults = FaultPlan::new(3)
            .rule("store.read", Fault::Garbage, Trigger::OnHits(vec![1]))
            .build();
        let store = Store::with_faults(&dir, faults).unwrap();
        let rec = record("k", 9);
        store.publish(&rec).unwrap();
        assert!(matches!(store.load(9, Some("k")), Loaded::Corrupt));
        // The file itself is fine: the next read succeeds.
        assert!(matches!(store.load(9, Some("k")), Loaded::Hit(_)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ls_verify_and_gc_cover_the_lifecycle() {
        let dir = temp_store_dir("lifecycle");
        let store = Store::open(&dir).unwrap();
        store.publish(&record("a", 1)).unwrap();
        store.publish(&record("b", 2)).unwrap();
        // A garbage file that looks like an artifact.
        fs::write(store.path_for(3), b"not an artifact").unwrap();
        // A stale temp from a crashed publish.
        fs::write(dir.join(".0000000000000001.999.0.tmp"), b"partial").unwrap();

        let ls = store.ls().unwrap();
        assert_eq!(
            ls.iter().map(|e| e.fingerprint).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );

        let verify = store.verify().unwrap();
        assert_eq!(verify.ok, 2);
        assert_eq!(verify.corrupt.len(), 1);

        // Nothing is old enough to collect, but temps always go.
        let gc = store.gc(Duration::from_secs(3600)).unwrap();
        assert_eq!((gc.removed, gc.temps), (0, 1));
        assert_eq!(gc.kept, 3);

        // Age limit zero: everything artifact-shaped goes.
        std::thread::sleep(Duration::from_millis(20));
        let gc = store.gc(Duration::ZERO).unwrap();
        assert_eq!(gc.removed, 3);
        assert!(store.ls().unwrap().is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_publishes_of_one_fingerprint_are_idempotent() {
        let dir = temp_store_dir("concurrent");
        let store = std::sync::Arc::new(Store::open(&dir).unwrap());
        let rec = std::sync::Arc::new(record("k", 0x77));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let store = std::sync::Arc::clone(&store);
                let rec = std::sync::Arc::clone(&rec);
                std::thread::spawn(move || store.publish(&rec).unwrap())
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Exactly one artifact file, fully valid.
        let ls = store.ls().unwrap();
        assert_eq!(ls.len(), 1);
        assert!(matches!(store.load(0x77, Some("k")), Loaded::Hit(_)));
        assert_eq!(store.verify().unwrap().ok, 1);
        // No temp leftovers.
        assert_eq!(store.gc(Duration::from_secs(3600)).unwrap().temps, 0);
        fs::remove_dir_all(&dir).ok();
    }
}
