//! SLR(1) look-aheads (the cheap grammar-global baseline).

use lalr_automata::Lr0Automaton;
use lalr_grammar::analysis::{nullable, FirstSets, FollowSets};
use lalr_grammar::Grammar;

use crate::lookahead::LookaheadSets;

/// Computes SLR(1) "look-aheads": every reduction `(q, A → ω)` simply gets
/// the grammar-global `FOLLOW(A)`.
///
/// This over-approximates LALR(1) — `FOLLOW(A)` merges the contexts of
/// *every* occurrence of `A`, where LALR keeps them apart per automaton
/// path — so SLR reports conflicts on some LALR(1) grammars (the paper's
/// adequacy hierarchy, experiment **E3**).
///
/// # Examples
///
/// ```
/// use lalr_automata::Lr0Automaton;
/// use lalr_core::{find_conflicts, slr_lookaheads, LalrAnalysis};
/// use lalr_grammar::parse_grammar;
///
/// // LALR(1) but not SLR(1).
/// let g = parse_grammar("s : l \"=\" r | r ; l : \"*\" r | \"id\" ; r : l ;")?;
/// let lr0 = Lr0Automaton::build(&g);
/// let slr = slr_lookaheads(&g, &lr0);
/// let lalr = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
/// assert!(!find_conflicts(&g, &lr0, &slr).is_empty());
/// assert!(find_conflicts(&g, &lr0, &lalr).is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn slr_lookaheads(grammar: &Grammar, lr0: &Lr0Automaton) -> LookaheadSets {
    let n = nullable(grammar);
    let first = FirstSets::compute(grammar, &n);
    let follow = FollowSets::compute(grammar, &first);

    let mut las = LookaheadSets::for_automaton(lr0, grammar.terminal_count());
    for state in lr0.states() {
        for &prod in lr0.reductions(state) {
            let lhs = grammar.production(prod).lhs();
            las.union_into(state, prod, &follow.of(lhs));
        }
    }
    las
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflicts::find_conflicts;
    use crate::engine::LalrAnalysis;
    use lalr_grammar::parse_grammar;

    #[test]
    fn slr_lookaheads_superset_of_lalr() {
        let srcs = [
            "s : \"a\" s | \"b\" ;",
            "e : e \"+\" t | t ; t : t \"*\" f | f ; f : \"(\" e \")\" | \"id\" ;",
            "s : l \"=\" r | r ; l : \"*\" r | \"id\" ; r : l ;",
            "s : a b ; a : \"x\" | ; b : \"y\" | ;",
        ];
        for src in srcs {
            let g = parse_grammar(src).unwrap();
            let lr0 = Lr0Automaton::build(&g);
            let slr = slr_lookaheads(&g, &lr0);
            let lalr = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
            for ((state, prod), la) in lalr.iter() {
                let slr_la = slr.la(state, prod).expect("SLR covers all reductions");
                assert!(
                    la.is_subset(slr_la),
                    "LALR LA ⊆ SLR LA must hold at state {} in {src}",
                    state.index()
                );
            }
        }
    }

    #[test]
    fn slr_adequate_on_plain_expression_grammar() {
        let g =
            parse_grammar("e : e \"+\" t | t ; t : t \"*\" f | f ; f : \"(\" e \")\" | \"id\" ;")
                .unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let slr = slr_lookaheads(&g, &lr0);
        assert!(find_conflicts(&g, &lr0, &slr).is_empty());
    }

    #[test]
    fn slr_covers_every_reduction_point() {
        let g = parse_grammar("s : a \"x\" | ; a : ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let slr = slr_lookaheads(&g, &lr0);
        let total: usize = lr0.states().map(|s| lr0.reductions(s).len()).sum();
        assert_eq!(slr.reduction_count(), total);
    }
}
