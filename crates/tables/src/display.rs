//! Pretty-printing of parse tables (the paper-style table rendering).

use std::fmt;

use crate::table::ParseTable;

impl fmt::Display for ParseTable {
    /// Renders the classic ACTION | GOTO matrix with one row per state.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tw = 5usize;
        write!(f, "{:>6} |", "state")?;
        for t in 0..self.terminal_count() {
            write!(f, "{:>tw$}", truncate(self.terminal_name(t), tw - 1))?;
        }
        write!(f, " |")?;
        for n in 1..self.nonterminal_count() {
            write!(f, "{:>tw$}", truncate(self.nonterminal_name(n), tw - 1))?;
        }
        writeln!(f)?;
        for s in 0..self.state_count() {
            write!(f, "{:>6} |", s)?;
            for t in 0..self.terminal_count() {
                write!(f, "{:>tw$}", self.action(s, t).to_string())?;
            }
            write!(f, " |")?;
            for n in 1..self.nonterminal_count() {
                match self.goto(s, n) {
                    Some(g) => write!(f, "{:>tw$}", g)?,
                    None => write!(f, "{:>tw$}", ".")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use crate::build::{build_table, TableOptions};
    use lalr_automata::Lr0Automaton;
    use lalr_core::LalrAnalysis;
    use lalr_grammar::parse_grammar;

    #[test]
    fn renders_all_states_and_accept() {
        let g = parse_grammar("s : \"a\" s | \"b\" ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let la = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
        let t = build_table(&g, &lr0, &la, TableOptions::default());
        let text = t.to_string();
        assert_eq!(text.lines().count() as u32, t.state_count() + 1);
        assert!(text.contains("acc"));
        assert!(text.contains("state"));
    }

    #[test]
    fn truncate_handles_multibyte() {
        assert_eq!(super::truncate("⊣⊣⊣", 2), "⊣⊣");
        assert_eq!(super::truncate("ab", 5), "ab");
    }
}
