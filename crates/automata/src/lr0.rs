//! The canonical LR(0) collection.

use std::collections::HashMap;

use lalr_grammar::{Grammar, NonTerminal, ProdId, Symbol, Terminal};

use crate::item::{Item, ItemSet};

/// Identifier of an LR(0) state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// The start state.
    pub const START: StateId = StateId(0);

    /// Creates a state id from a raw index.
    #[inline]
    pub fn new(index: usize) -> StateId {
        StateId(index as u32)
    }

    /// The index into the automaton's state table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a *nonterminal transition* `(p, A)` — the node set of the
/// DeRemer–Pennello relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NtTransId(pub(crate) u32);

impl NtTransId {
    /// Creates an id from a raw index.
    #[inline]
    pub fn new(index: usize) -> NtTransId {
        NtTransId(index as u32)
    }

    /// The index into [`Lr0Automaton::nt_transitions`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A nonterminal transition `p --A--> q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NtTransition {
    /// Source state `p`.
    pub from: StateId,
    /// The nonterminal `A`.
    pub nt: NonTerminal,
    /// Target state `q = GOTO(p, A)`.
    pub to: StateId,
}

#[derive(Debug, Clone)]
struct State {
    kernel: ItemSet,
    /// Transitions sorted by symbol for binary search.
    transitions: Vec<(Symbol, StateId)>,
    /// Final items of the closure (reductions available here).
    reductions: Vec<ProdId>,
    /// The symbol every in-edge of this state is labelled with (`None` only
    /// for the start state).
    accessing_symbol: Option<Symbol>,
}

/// The canonical LR(0) collection of a grammar.
///
/// # Examples
///
/// ```
/// use lalr_automata::{Lr0Automaton, StateId};
/// use lalr_grammar::{parse_grammar, Symbol};
///
/// let g = parse_grammar("e : e \"+\" t | t ; t : \"x\" ;")?;
/// let lr0 = Lr0Automaton::build(&g);
/// let plus = Symbol::Terminal(g.terminal_by_name("+").unwrap());
/// let after_e = lr0
///     .transition(StateId::START, Symbol::NonTerminal(g.start()))
///     .unwrap();
/// assert!(lr0.transition(after_e, plus).is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Lr0Automaton {
    states: Vec<State>,
    nt_transitions: Vec<NtTransition>,
    /// `(state, nonterminal) → NtTransId` lookup.
    nt_index: HashMap<(StateId, NonTerminal), NtTransId>,
}

impl Lr0Automaton {
    /// Builds the canonical collection by the standard worklist algorithm.
    pub fn build(grammar: &Grammar) -> Lr0Automaton {
        let start_kernel = ItemSet::new(vec![Item::start_of(ProdId::START)]);
        let mut states: Vec<State> = Vec::new();
        let mut interned: HashMap<ItemSet, StateId> = HashMap::new();
        let mut work: Vec<StateId> = Vec::new();

        let mut intern = |kernel: ItemSet,
                          accessing: Option<Symbol>,
                          states: &mut Vec<State>,
                          work: &mut Vec<StateId>|
         -> StateId {
            if let Some(&id) = interned.get(&kernel) {
                return id;
            }
            let id = StateId::new(states.len());
            interned.insert(kernel.clone(), id);
            states.push(State {
                kernel,
                transitions: Vec::new(),
                reductions: Vec::new(),
                accessing_symbol: accessing,
            });
            work.push(id);
            id
        };

        intern(start_kernel, None, &mut states, &mut work);

        while let Some(sid) = work.pop() {
            let closure = states[sid.index()].kernel.closure(grammar);
            // Group items by next symbol, preserving first-seen symbol order.
            let mut order: Vec<Symbol> = Vec::new();
            let mut buckets: HashMap<Symbol, Vec<Item>> = HashMap::new();
            let mut reductions: Vec<ProdId> = Vec::new();
            for item in &closure {
                match item.next_symbol(grammar) {
                    None => reductions.push(item.production()),
                    Some(sym) => {
                        let b = buckets.entry(sym).or_insert_with(|| {
                            order.push(sym);
                            Vec::new()
                        });
                        b.push(item.advanced());
                    }
                }
            }
            reductions.sort_unstable();
            reductions.dedup();
            states[sid.index()].reductions = reductions;

            let mut transitions: Vec<(Symbol, StateId)> = Vec::with_capacity(order.len());
            for sym in order {
                let kernel = ItemSet::new(buckets.remove(&sym).expect("bucket exists"));
                let target = intern(kernel, Some(sym), &mut states, &mut work);
                transitions.push((sym, target));
            }
            transitions.sort_unstable_by_key(|&(sym, _)| sym);
            states[sid.index()].transitions = transitions;
        }

        // Enumerate nonterminal transitions in (state, nt) order — the
        // canonical numbering used by the relation matrices.
        let mut nt_transitions = Vec::new();
        let mut nt_index = HashMap::new();
        for (i, st) in states.iter().enumerate() {
            for &(sym, to) in &st.transitions {
                if let Symbol::NonTerminal(nt) = sym {
                    let id = NtTransId::new(nt_transitions.len());
                    let from = StateId::new(i);
                    nt_transitions.push(NtTransition { from, nt, to });
                    nt_index.insert((from, nt), id);
                }
            }
        }

        Lr0Automaton {
            states,
            nt_transitions,
            nt_index,
        }
    }

    /// Number of states.
    #[inline]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Iterates over all state ids.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len() as u32).map(StateId)
    }

    /// The kernel items of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn kernel(&self, state: StateId) -> &ItemSet {
        &self.states[state.index()].kernel
    }

    /// The full closure of `state` (recomputed on demand; kernels are what
    /// the automaton stores).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn closure(&self, grammar: &Grammar, state: StateId) -> ItemSet {
        self.states[state.index()].kernel.closure(grammar)
    }

    /// `GOTO(state, symbol)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn transition(&self, state: StateId, sym: Symbol) -> Option<StateId> {
        let ts = &self.states[state.index()].transitions;
        ts.binary_search_by_key(&sym, |&(s, _)| s)
            .ok()
            .map(|i| ts[i].1)
    }

    /// All outgoing transitions of `state`, sorted by symbol.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn transitions(&self, state: StateId) -> &[(Symbol, StateId)] {
        &self.states[state.index()].transitions
    }

    /// The outgoing *terminal* shift symbols of `state`.
    pub fn shift_symbols(&self, state: StateId) -> impl Iterator<Item = Terminal> + '_ {
        self.transitions(state)
            .iter()
            .filter_map(|&(s, _)| s.terminal())
    }

    /// The productions reducible in `state` (final items of its closure).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn reductions(&self, state: StateId) -> &[ProdId] {
        &self.states[state.index()].reductions
    }

    /// The unique symbol labelling every in-edge of `state` (`None` for the
    /// start state).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn accessing_symbol(&self, state: StateId) -> Option<Symbol> {
        self.states[state.index()].accessing_symbol
    }

    /// All nonterminal transitions, in id order.
    #[inline]
    pub fn nt_transitions(&self) -> &[NtTransition] {
        &self.nt_transitions
    }

    /// A nonterminal transition by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn nt_transition(&self, id: NtTransId) -> NtTransition {
        self.nt_transitions[id.index()]
    }

    /// Looks up the id of the transition `(state, nt)`.
    pub fn nt_transition_id(&self, state: StateId, nt: NonTerminal) -> Option<NtTransId> {
        self.nt_index.get(&(state, nt)).copied()
    }

    /// Walks `symbols` from `state`, returning the end state if every
    /// transition exists.
    pub fn walk(&self, state: StateId, symbols: &[Symbol]) -> Option<StateId> {
        symbols
            .iter()
            .try_fold(state, |s, &sym| self.transition(s, sym))
    }

    /// The state reached by shifting the user start symbol from the start
    /// state — the *accept state* (its kernel is `<start> → S ·`).
    pub fn accept_state(&self, grammar: &Grammar) -> StateId {
        self.transition(StateId::START, Symbol::NonTerminal(grammar.start()))
            .expect("the start production's transition always exists")
    }

    /// Total number of transitions.
    pub fn transition_count(&self) -> usize {
        self.states.iter().map(|s| s.transitions.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalr_grammar::parse_grammar;

    /// The dragon-book expression grammar has the famous 12-state LR(0)
    /// machine.
    #[test]
    fn dragon_expression_grammar_has_12_states() {
        let g = parse_grammar(
            r#"
            e : e "+" t | t ;
            t : t "*" f | f ;
            f : "(" e ")" | "id" ;
            "#,
        )
        .unwrap();
        let lr0 = Lr0Automaton::build(&g);
        assert_eq!(lr0.state_count(), 12);
        // Nonterminal transitions: I0-e, I0-t, I0-f, I4-e, I4-t, I4-f,
        // I6-t, I6-f, I7-f.
        assert_eq!(lr0.nt_transitions().len(), 9);
    }

    #[test]
    fn start_state_and_accept_state() {
        let g = parse_grammar("s : \"a\" ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        assert_eq!(lr0.accessing_symbol(StateId::START), None);
        let acc = lr0.accept_state(&g);
        assert_eq!(
            lr0.accessing_symbol(acc),
            Some(Symbol::NonTerminal(g.start()))
        );
        let kernel = lr0.kernel(acc);
        assert_eq!(kernel.len(), 1);
        assert!(kernel.items()[0].is_final(&g));
    }

    #[test]
    fn reductions_include_epsilon_items() {
        let g = parse_grammar("s : a \"x\" ; a : ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        // In the start state, a → · is a (final) closure item.
        let a_prod = g.productions_of(g.nonterminal_by_name("a").unwrap())[0];
        assert_eq!(lr0.reductions(StateId::START), &[a_prod]);
    }

    #[test]
    fn walk_follows_production_bodies() {
        let g = parse_grammar("s : \"a\" \"b\" \"c\" ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let p = g.production(ProdId::new(1));
        let end = lr0.walk(StateId::START, p.rhs()).unwrap();
        assert!(lr0.reductions(end).contains(&ProdId::new(1)));
        assert_eq!(lr0.walk(end, p.rhs()), None);
    }

    #[test]
    fn nt_transition_index_is_consistent() {
        let g = parse_grammar("e : e \"+\" t | t ; t : \"x\" ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        for (i, t) in lr0.nt_transitions().iter().enumerate() {
            let id = NtTransId::new(i);
            assert_eq!(lr0.nt_transition(id), *t);
            assert_eq!(lr0.nt_transition_id(t.from, t.nt), Some(id));
            assert_eq!(
                lr0.transition(t.from, Symbol::NonTerminal(t.nt)),
                Some(t.to)
            );
        }
    }

    #[test]
    fn deterministic_state_numbering() {
        let g = parse_grammar("s : \"a\" s | \"b\" ;").unwrap();
        let a = Lr0Automaton::build(&g);
        let b = Lr0Automaton::build(&g);
        assert_eq!(a.state_count(), b.state_count());
        for s in a.states() {
            assert_eq!(a.kernel(s), b.kernel(s));
            assert_eq!(a.transitions(s), b.transitions(s));
        }
    }

    #[test]
    fn accessing_symbol_unique_over_in_edges() {
        let g =
            parse_grammar("e : e \"+\" t | t ; t : t \"*\" f | f ; f : \"(\" e \")\" | \"id\" ;")
                .unwrap();
        let lr0 = Lr0Automaton::build(&g);
        for s in lr0.states() {
            for &(sym, to) in lr0.transitions(s) {
                assert_eq!(lr0.accessing_symbol(to), Some(sym));
            }
        }
    }

    #[test]
    fn transition_count_matches_enumeration() {
        let g = parse_grammar("s : \"a\" s | \"b\" ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let manual: usize = lr0.states().map(|s| lr0.transitions(s).len()).sum();
        assert_eq!(lr0.transition_count(), manual);
    }
}
