//! Table construction and conflict resolution.

use lalr_automata::Lr0Automaton;
use lalr_core::LookaheadSets;
use lalr_grammar::{Assoc, Grammar, ProdId, Symbol, Terminal};

use crate::action::Action;
use crate::table::{ParseTable, ProductionInfo, NO_GOTO};

/// How conflicts that precedence does not settle are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableOptions {
    /// Apply yacc defaults to unresolved conflicts: shift over reduce,
    /// earlier production over later. When `false` (strict mode),
    /// unresolved conflicts become [`Action::Error`] entries — the parser
    /// rejects the ambiguous continuations instead of guessing. Either
    /// way every decision is logged.
    pub yacc_defaults: bool,
}

impl Default for TableOptions {
    fn default() -> Self {
        TableOptions {
            yacc_defaults: true,
        }
    }
}

/// Why a conflict was resolved the way it was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ResolutionReason {
    /// The production's precedence level beat the terminal's.
    PrecedenceReduce,
    /// The terminal's precedence level beat the production's.
    PrecedenceShift,
    /// Same level, `%left` ⇒ reduce.
    AssocReduce,
    /// Same level, `%right` ⇒ shift.
    AssocShift,
    /// Same level, `%nonassoc` ⇒ error entry.
    NonAssocError,
    /// yacc default: shift over reduce.
    DefaultShift,
    /// yacc default: the earlier production wins a reduce/reduce.
    DefaultEarlierProduction,
    /// Strict mode (`yacc_defaults = false`): unresolved conflicts become
    /// error entries.
    StrictError,
}

/// A logged conflict resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Resolution {
    /// The state the conflict was in.
    pub state: u32,
    /// The look-ahead terminal.
    pub terminal: u32,
    /// The action that lost.
    pub discarded: Action,
    /// The action that won (or [`Action::Error`] for `%nonassoc`).
    pub kept: Action,
    /// Why.
    pub reason: ResolutionReason,
}

/// Builds the dense ACTION/GOTO table from look-ahead sets.
///
/// Precedence declarations resolve shift/reduce conflicts exactly as in
/// yacc: compare the terminal's precedence with the production's (its
/// `%prec` override or rightmost terminal); on a tie, associativity
/// decides. Unresolved conflicts fall back to yacc defaults (shift;
/// earlier production) when [`TableOptions::yacc_defaults`] is set. Every
/// decision lands in [`ParseTable`]-accompanying [`Resolution`] log —
/// retrieved via [`ParseTable::resolutions`].
///
/// # Examples
///
/// ```
/// use lalr_automata::Lr0Automaton;
/// use lalr_core::LalrAnalysis;
/// use lalr_grammar::parse_grammar;
/// use lalr_tables::{build_table, TableOptions};
///
/// // Ambiguous expression grammar tamed by precedence, as in yacc.
/// let g = parse_grammar(
///     "%left \"+\"  %left \"*\"  e : e \"+\" e | e \"*\" e | \"x\" ;",
/// )?;
/// let lr0 = Lr0Automaton::build(&g);
/// let la = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
/// let t = build_table(&g, &lr0, &la, TableOptions::default());
/// assert!(t.resolutions().iter().all(|r| !matches!(
///     r.reason,
///     lalr_tables::ResolutionReason::DefaultShift
/// )), "precedence settles everything");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn build_table(
    grammar: &Grammar,
    lr0: &Lr0Automaton,
    lookaheads: &LookaheadSets,
    options: TableOptions,
) -> ParseTable {
    let states = lr0.state_count() as u32;
    let terminals = grammar.terminal_count() as u32;
    let nonterminals = grammar.nonterminal_count() as u32;
    let mut actions = vec![Action::Error; (states * terminals) as usize];
    let mut gotos = vec![NO_GOTO; (states * nonterminals) as usize];
    let mut resolutions = Vec::new();

    let accept_state = lr0.accept_state(grammar);

    // Shifts and gotos.
    for state in lr0.states() {
        for &(sym, to) in lr0.transitions(state) {
            match sym {
                Symbol::Terminal(t) => {
                    actions[state.index() * terminals as usize + t.index()] =
                        Action::Shift(to.index() as u32);
                }
                Symbol::NonTerminal(n) => {
                    gotos[state.index() * nonterminals as usize + n.index()] = to.index() as u32;
                }
            }
        }
    }

    // Reductions (with conflict resolution), then the accept action.
    for state in lr0.states() {
        for &prod in lr0.reductions(state) {
            let Some(la) = lookaheads.la(state, prod) else {
                continue;
            };
            for t in la.iter() {
                let slot = state.index() * terminals as usize + t;
                let new = if prod == ProdId::START {
                    Action::Accept
                } else {
                    Action::Reduce(prod.index() as u32)
                };
                let old = actions[slot];
                let (kept, resolution) =
                    resolve(grammar, old, new, Terminal::new(t), prod, options);
                if let Some(reason) = resolution {
                    resolutions.push(Resolution {
                        state: state.index() as u32,
                        terminal: t as u32,
                        discarded: if kept == old { new } else { old },
                        kept,
                        reason,
                    });
                }
                actions[slot] = kept;
            }
        }
    }
    // Accept: reached by reducing the start production's RHS; the LA entry
    // for the augmented production covers it, but ensure it even when the
    // caller passed a method that skips it (e.g. raw SLR sets include it
    // via FOLLOW(<start>) = {$}).
    actions[accept_state.index() * terminals as usize + Terminal::EOF.index()] = Action::Accept;

    let productions = grammar
        .iter_productions()
        .map(|(id, p)| ProductionInfo {
            lhs: p.lhs().index() as u32,
            rhs_len: p.len() as u32,
            display: grammar.production_to_string(id),
        })
        .collect();

    ParseTable {
        actions,
        gotos,
        states,
        terminals,
        nonterminals,
        productions,
        terminal_names: grammar
            .terminals()
            .map(|t| grammar.terminal_name(t).to_string())
            .collect(),
        nonterminal_names: grammar
            .nonterminals()
            .map(|n| grammar.nonterminal_name(n).to_string())
            .collect(),
        resolutions,
    }
}

/// Decides between an existing entry and a new reduce/accept action.
/// Returns the kept action and, when there was a conflict, the reason.
fn resolve(
    grammar: &Grammar,
    old: Action,
    new: Action,
    terminal: Terminal,
    prod: ProdId,
    options: TableOptions,
) -> (Action, Option<ResolutionReason>) {
    match old {
        Action::Error => (new, None),
        Action::Accept => (old, None),
        Action::Shift(_) => {
            // Shift/reduce: try precedence.
            let tp = grammar.precedence_of(terminal);
            let pp = grammar.production_precedence(prod);
            match (tp, pp) {
                (Some(t), Some(p)) => {
                    if p.level > t.level {
                        (new, Some(ResolutionReason::PrecedenceReduce))
                    } else if t.level > p.level {
                        (old, Some(ResolutionReason::PrecedenceShift))
                    } else {
                        match t.assoc {
                            Assoc::Left => (new, Some(ResolutionReason::AssocReduce)),
                            Assoc::Right => (old, Some(ResolutionReason::AssocShift)),
                            Assoc::NonAssoc => {
                                (Action::Error, Some(ResolutionReason::NonAssocError))
                            }
                        }
                    }
                }
                _ => {
                    if options.yacc_defaults {
                        (old, Some(ResolutionReason::DefaultShift))
                    } else {
                        (Action::Error, Some(ResolutionReason::StrictError))
                    }
                }
            }
        }
        Action::Reduce(p_old) => {
            if options.yacc_defaults {
                // Reduce/reduce: earlier production wins.
                let keep_old = (p_old as usize) <= prod.index();
                let kept = if keep_old { old } else { new };
                (kept, Some(ResolutionReason::DefaultEarlierProduction))
            } else {
                (Action::Error, Some(ResolutionReason::StrictError))
            }
        }
    }
}

impl ParseTable {
    /// The conflict resolutions performed during construction.
    pub fn resolutions(&self) -> &[Resolution] {
        &self.resolutions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalr_core::LalrAnalysis;
    use lalr_grammar::parse_grammar;

    fn build(src: &str) -> (Grammar, ParseTable) {
        let g = parse_grammar(src).unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let la = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
        let t = build_table(&g, &lr0, &la, TableOptions::default());
        (g, t)
    }

    #[test]
    fn accept_on_eof() {
        let (_, t) = build("s : \"a\" ;");
        // Find the accept entry.
        let accepts = (0..t.state_count())
            .flat_map(|s| (0..t.terminal_count()).map(move |x| (s, x)))
            .filter(|&(s, x)| t.action(s, x) == Action::Accept)
            .collect::<Vec<_>>();
        assert_eq!(accepts.len(), 1);
        assert_eq!(accepts[0].1, 0, "accept only on $");
    }

    #[test]
    fn precedence_left_assoc_prefers_reduce() {
        let (g, t) = build("%left \"+\"  e : e \"+\" e | \"x\" ;");
        assert!(t
            .resolutions()
            .iter()
            .any(|r| r.reason == ResolutionReason::AssocReduce));
        // In the conflict state, the "+" entry must be a reduce.
        let plus = g.terminal_by_name("+").unwrap().index() as u32;
        let reduces = (0..t.state_count())
            .filter(|&s| t.action(s, plus).is_reduce())
            .count();
        assert!(reduces >= 1);
    }

    #[test]
    fn precedence_right_assoc_prefers_shift() {
        let (_, t) = build("%right \"^\"  e : e \"^\" e | \"x\" ;");
        assert!(t
            .resolutions()
            .iter()
            .any(|r| r.reason == ResolutionReason::AssocShift));
    }

    #[test]
    fn nonassoc_produces_error_entry() {
        let (g, t) = build("%nonassoc \"<\"  e : e \"<\" e | \"x\" ;");
        assert!(t
            .resolutions()
            .iter()
            .any(|r| r.reason == ResolutionReason::NonAssocError));
        let lt = g.terminal_by_name("<").unwrap().index() as u32;
        // Some state must have an explicit error on "<" where a shift or
        // reduce would otherwise be.
        let has_error_entry = (0..t.state_count()).any(|s| {
            t.action(s, lt).is_error()
                && t.resolutions()
                    .iter()
                    .any(|r| r.state == s && r.terminal == lt)
        });
        assert!(has_error_entry);
    }

    #[test]
    fn different_levels_resolve_by_level() {
        let (g, t) = build("%left \"+\"  %left \"*\"  e : e \"+\" e | e \"*\" e | \"x\" ;");
        // e → e * e · with look-ahead "+": reduce (PrecedenceReduce).
        // e → e + e · with look-ahead "*": shift (PrecedenceShift).
        assert!(t
            .resolutions()
            .iter()
            .any(|r| r.reason == ResolutionReason::PrecedenceReduce));
        assert!(t
            .resolutions()
            .iter()
            .any(|r| r.reason == ResolutionReason::PrecedenceShift));
        let _ = g;
    }

    #[test]
    fn default_shift_for_dangling_else() {
        let (g, t) = build("s : \"if\" s \"else\" s | \"if\" s | \"x\" ;");
        let else_t = g.terminal_by_name("else").unwrap().index() as u32;
        let r: Vec<_> = t
            .resolutions()
            .iter()
            .filter(|r| r.reason == ResolutionReason::DefaultShift)
            .collect();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].terminal, else_t);
        assert!(r[0].kept.is_shift(), "yacc shifts the else");
    }

    #[test]
    fn reduce_reduce_prefers_earlier_production() {
        let (_, t) = build("s : a | b ; a : \"x\" ; b : \"x\" ;");
        let r: Vec<_> = t
            .resolutions()
            .iter()
            .filter(|r| r.reason == ResolutionReason::DefaultEarlierProduction)
            .collect();
        assert_eq!(r.len(), 1);
        let Action::Reduce(kept) = r[0].kept else {
            panic!("kept must be a reduce");
        };
        let Action::Reduce(discarded) = r[0].discarded else {
            panic!("discarded must be a reduce");
        };
        assert!(kept < discarded);
    }

    #[test]
    fn conflict_free_grammar_logs_nothing() {
        let (_, t) = build("e : e \"+\" t | t ; t : \"x\" ;");
        assert!(t.resolutions().is_empty());
    }

    fn build_strict(src: &str) -> (Grammar, ParseTable) {
        let g = parse_grammar(src).unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let la = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
        let t = build_table(
            &g,
            &lr0,
            &la,
            TableOptions {
                yacc_defaults: false,
            },
        );
        (g, t)
    }

    #[test]
    fn strict_mode_turns_dangling_else_into_error_entry() {
        let (g, t) = build_strict("s : \"if\" s \"else\" s | \"if\" s | \"x\" ;");
        let else_t = g.terminal_by_name("else").unwrap().index() as u32;
        let strict: Vec<_> = t
            .resolutions()
            .iter()
            .filter(|r| r.reason == ResolutionReason::StrictError)
            .collect();
        assert_eq!(strict.len(), 1);
        assert_eq!(strict[0].terminal, else_t);
        assert!(t.action(strict[0].state, else_t).is_error());
    }

    #[test]
    fn strict_mode_errors_reduce_reduce() {
        let (_, t) = build_strict("s : a | b ; a : \"x\" ; b : \"x\" ;");
        assert!(t
            .resolutions()
            .iter()
            .any(|r| r.reason == ResolutionReason::StrictError));
    }

    #[test]
    fn strict_mode_still_honours_precedence() {
        let (_, t) = build_strict("%left \"+\"  e : e \"+\" e | \"x\" ;");
        // Precedence settles it; strict mode never fires.
        assert!(t
            .resolutions()
            .iter()
            .all(|r| r.reason != ResolutionReason::StrictError));
    }
}
