//! Regression tests: every `ParseError` carries a position, including
//! unexpected-EOF errors, which historically had no offset to point at.

use lalr_automata::Lr0Automaton;
use lalr_core::LalrAnalysis;
use lalr_grammar::parse_grammar;
use lalr_runtime::{CompressedSource, Lexer, Parser, Token};
use lalr_tables::{build_table, CompressedTable, ParseTable, TableOptions};

const EXPR: &str = "e : e \"+\" t | t ; t : t \"*\" f | f ; f : \"(\" e \")\" | NUM ;";

fn table(src: &str) -> ParseTable {
    let g = parse_grammar(src).unwrap();
    let lr0 = Lr0Automaton::build(&g);
    let la = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
    build_table(&g, &lr0, &la, TableOptions::default())
}

#[test]
fn eof_error_points_past_last_token() {
    let t = table(EXPR);
    let lx = Lexer::for_table(&t).number("NUM").build();
    let err = Parser::new(&t)
        .parse(lx.tokenize("12 + 34 *").unwrap())
        .unwrap_err();
    assert!(err.found.is_none(), "{err:?}");
    // "*" occupies byte 8; the error points just past it.
    assert_eq!(err.offset, 9);
    assert!(
        err.to_string().contains("at offset 9"),
        "{}",
        err.to_string()
    );
}

#[test]
fn eof_error_on_empty_input_points_at_zero() {
    let t = table(EXPR);
    let err = Parser::new(&t).parse(Vec::new()).unwrap_err();
    assert!(err.found.is_none());
    assert_eq!(err.offset, 0);
}

#[test]
fn mid_input_error_offset_matches_found_token() {
    let t = table(EXPR);
    let lx = Lexer::for_table(&t).number("NUM").build();
    let err = Parser::new(&t)
        .parse(lx.tokenize("1 + + 2").unwrap())
        .unwrap_err();
    let found = err.found.as_ref().expect("mid-input error has a token");
    assert_eq!(err.offset, found.offset());
    assert_eq!(err.offset, 4);
}

#[test]
fn compressed_table_reports_the_same_eof_offset() {
    let t = table(EXPR);
    let c = CompressedTable::from_dense(&t);
    let src = CompressedSource::new(&c, &t);
    let lx = Lexer::for_table(&t).number("NUM").build();
    for input in ["1 +", "( 1 + 2", "", "1 *"] {
        let toks = lx.tokenize(input).unwrap();
        let dense = Parser::new(&t).parse(toks.clone()).unwrap_err();
        let compressed = Parser::new(&src).parse(toks).unwrap_err();
        assert_eq!(dense.offset, compressed.offset, "{input:?}");
        assert_eq!(
            dense.found.is_none(),
            compressed.found.is_none(),
            "{input:?}"
        );
    }
}

#[test]
fn recovery_eof_diagnostics_are_positioned() {
    // Statement list with ";" sync; the trailing garbage forces an
    // EOF-adjacent diagnostic that must still carry an offset.
    let t = table("list : stmt | list \";\" stmt ; stmt : ID \"=\" NUM ;");
    let lx = Lexer::for_table(&t).number("NUM").identifier("ID").build();
    let semi = t.terminal_by_name(";").unwrap();
    let toks = lx.tokenize("a = 1 ; b =").unwrap();
    let (_, errors) = Parser::new(&t).parse_with_recovery(toks, &[semi], 10);
    assert!(!errors.is_empty());
    for e in &errors {
        if e.found.is_none() {
            assert_eq!(e.offset, 11, "{e:?}");
        }
    }
}

#[test]
fn token_index_streams_position_eof_one_past_last_index() {
    // Service-style tokenization: offset = token index, text = terminal
    // name. EOF offset must be index-of-last + len(last name).
    let t = table(EXPR);
    let num = t.terminal_by_name("NUM").unwrap();
    let plus = t.terminal_by_name("+").unwrap();
    let toks = vec![Token::new(num, "NUM", 0), Token::new(plus, "+", 1)];
    let err = Parser::new(&t).parse(toks).unwrap_err();
    assert!(err.found.is_none());
    assert_eq!(err.offset, 2); // 1 + len("+")
}
