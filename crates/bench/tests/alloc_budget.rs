//! Allocation-budget regression guard for the dense-layout overhaul.
//!
//! The cold DP pipeline on `c_subset` allocated ~12,800 times before the
//! overhaul and ~3,700 after (release build; debug counts run somewhat
//! higher, so the ceilings below include headroom over the recorded
//! debug-mode measurements). If a change reintroduces per-edge hashing,
//! per-entry set allocation, or kernel cloning, the count jumps well past
//! the ceiling and this test fails before a benchmark ever runs.

use lalr_automata::Lr0Automaton;
use lalr_bench::alloc_counter::measure;
use lalr_bench::methods::Method;

/// Generous ceiling: ~2x the post-overhaul count, still far below (<50%
/// of) the pre-overhaul 12,838 — catches regressions to the old layout
/// without flaking on allocator noise or small legitimate changes.
const C_SUBSET_DP_ALLOC_CEILING: usize = 6_000;

#[test]
fn cold_dp_pipeline_on_c_subset_stays_under_allocation_budget() {
    let entry = lalr_corpus::by_name("c_subset").expect("corpus entry exists");
    let ((), stats) = measure(|| {
        let grammar = entry.grammar();
        let lr0 = Lr0Automaton::build(&grammar);
        let la = Method::DeRemerPennello.run(&grammar, &lr0);
        std::hint::black_box(la.total_bits());
    });
    assert!(
        stats.allocations <= C_SUBSET_DP_ALLOC_CEILING,
        "cold DP pipeline on c_subset allocated {} times (budget {}) — \
         did a hash map or clone sneak back onto the hot path?",
        stats.allocations,
        C_SUBSET_DP_ALLOC_CEILING
    );
}
