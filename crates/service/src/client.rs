//! A minimal blocking client for the daemon protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use serde_json::Value;

use crate::protocol::request_to_line;
use crate::service::Request;
use crate::ServiceError;

/// One decoded response line.
#[derive(Debug, Clone)]
pub struct ClientReply {
    /// The raw response line (without the trailing newline).
    pub raw: String,
    /// The parsed JSON document.
    pub value: Value,
}

impl ClientReply {
    /// The response's `"ok"` field.
    pub fn is_ok(&self) -> bool {
        self.value
            .get("ok")
            .and_then(Value::as_bool)
            .unwrap_or(false)
    }

    /// The error message, for `ok:false` replies.
    pub fn error_message(&self) -> Option<&str> {
        self.value.get("error")?.get("message")?.as_str()
    }
}

/// Sends one request to a running daemon and reads one response line.
///
/// `timeout` bounds connect, write, and read individually. A
/// `deadline` is forwarded to the server as `deadline_ms`.
pub fn call(
    addr: &str,
    request: &Request,
    deadline: Option<Duration>,
    timeout: Duration,
) -> Result<ClientReply, ServiceError> {
    let io_err = |e: std::io::Error| ServiceError::Io(format!("{addr}: {e}"));
    let sock_addr = addr
        .to_socket_addrs()
        .map_err(io_err)?
        .next()
        .ok_or_else(|| ServiceError::Io(format!("{addr}: no usable address")))?;
    let stream = TcpStream::connect_timeout(&sock_addr, timeout).map_err(io_err)?;
    stream.set_read_timeout(Some(timeout)).map_err(io_err)?;
    stream.set_write_timeout(Some(timeout)).map_err(io_err)?;

    let mut writer = stream.try_clone().map_err(io_err)?;
    writeln!(writer, "{}", request_to_line(request, deadline)).map_err(io_err)?;

    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(io_err)?;
    if line.is_empty() {
        return Err(ServiceError::Io(format!(
            "{addr}: connection closed before a response arrived"
        )));
    }
    let raw = line.trim_end().to_string();
    let value = serde_json::from_str(&raw).map_err(|e| ServiceError::Io(format!("{addr}: {e}")))?;
    Ok(ClientReply { raw, value })
}
