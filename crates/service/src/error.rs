//! Structured service failures.
//!
//! Every request path returns a [`ServiceError`] instead of panicking —
//! the compile pipeline runs under `catch_unwind`, so even a bug in the
//! engine surfaces as a `panicked` error response rather than taking a
//! worker (or the daemon) down. Errors are `Clone` because a coalesced
//! compile failure is delivered to every waiter.

use std::fmt;

/// Why a request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The grammar text did not parse.
    BadGrammar(String),
    /// The request was structurally invalid (bad JSON shape, unknown op,
    /// unknown terminal name, …).
    BadRequest(String),
    /// The request body exceeded the configured size guard.
    TooLarge {
        /// Size of the offending payload in bytes.
        size: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The request missed its deadline (in queue or during execution).
    DeadlineExceeded {
        /// How long the request had been in the service when it expired.
        elapsed_ms: u64,
    },
    /// The compile pipeline panicked; the payload is the panic message.
    Panicked(String),
    /// The service is shutting down or over its concurrency cap.
    Unavailable(String),
    /// A client-side transport failure (connect, read, write, framing).
    Io(String),
}

impl ServiceError {
    /// Converts a `catch_unwind` payload into a [`ServiceError::Panicked`]
    /// carrying the panic message (the common `&str`/`String` payloads;
    /// anything else becomes `"unknown panic"`).
    pub fn from_panic(payload: &(dyn std::any::Any + Send)) -> ServiceError {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "unknown panic".to_string());
        ServiceError::Panicked(msg)
    }

    /// Stable machine-readable discriminator used on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceError::BadGrammar(_) => "bad_grammar",
            ServiceError::BadRequest(_) => "bad_request",
            ServiceError::TooLarge { .. } => "too_large",
            ServiceError::DeadlineExceeded { .. } => "deadline",
            ServiceError::Panicked(_) => "panicked",
            ServiceError::Unavailable(_) => "unavailable",
            ServiceError::Io(_) => "io",
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::BadGrammar(m) => write!(f, "grammar error: {m}"),
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServiceError::TooLarge { size, limit } => {
                write!(f, "request of {size} bytes exceeds the {limit}-byte limit")
            }
            ServiceError::DeadlineExceeded { elapsed_ms } => {
                write!(f, "deadline exceeded after {elapsed_ms} ms")
            }
            ServiceError::Panicked(m) => write!(f, "compile pipeline panicked: {m}"),
            ServiceError::Unavailable(m) => write!(f, "service unavailable: {m}"),
            ServiceError::Io(m) => write!(f, "transport error: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_display_are_stable() {
        let e = ServiceError::TooLarge { size: 10, limit: 5 };
        assert_eq!(e.kind(), "too_large");
        assert!(e.to_string().contains("10 bytes"));
        assert_eq!(
            ServiceError::BadGrammar(String::new()).kind(),
            "bad_grammar"
        );
        assert_eq!(
            ServiceError::DeadlineExceeded { elapsed_ms: 7 }.kind(),
            "deadline"
        );
    }
}
