//! E6 — the Digraph algorithm vs the naive relaxation closure (and, on
//! square relations, Warshall's transitive closure) for the Follow
//! computation. The paper's efficiency claim isolated.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lalr_automata::Lr0Automaton;
use lalr_bitset::BitMatrix;
use lalr_core::Relations;
use lalr_digraph::{digraph, digraph_levels, naive_closure};
use lalr_grammar::Grammar;

fn follow_inputs(grammar: &Grammar) -> (lalr_digraph::Graph, BitMatrix) {
    let lr0 = Lr0Automaton::build(grammar);
    let rel = Relations::build(grammar, &lr0);
    // Phase-2 input: Read sets (DR closed over reads) and the includes
    // relation.
    let mut read = rel.dr().clone();
    digraph(rel.reads(), &mut read);
    (rel.includes().clone(), read)
}

fn bench_follow_computation(c: &mut Criterion) {
    let mut group = c.benchmark_group("digraph_vs_naive");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for name in ["pascal", "ada_subset", "c_subset"] {
        let grammar = lalr_corpus::by_name(name).expect("exists").grammar();
        let (includes, read) = follow_inputs(&grammar);
        group.bench_with_input(
            BenchmarkId::new("digraph", name),
            &(&includes, &read),
            |b, (g, m)| {
                b.iter(|| {
                    let mut sets = (*m).clone();
                    digraph(g, &mut sets);
                    sets
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive", name),
            &(&includes, &read),
            |b, (g, m)| {
                b.iter(|| {
                    let mut sets = (*m).clone();
                    naive_closure(g, &mut sets);
                    sets
                })
            },
        );
    }
    group.finish();
}

fn bench_scc_collapse(c: &mut Criterion) {
    // One big includes-SCC: the Digraph algorithm assigns the whole
    // component in one pass; naive relaxation cycles until stable.
    let mut group = c.benchmark_group("digraph_vs_naive_scc");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [20usize, 60] {
        let grammar = lalr_corpus::synthetic::includes_scc(n);
        let (includes, read) = follow_inputs(&grammar);
        group.bench_with_input(
            BenchmarkId::new("digraph", n),
            &(&includes, &read),
            |b, (g, m)| {
                b.iter(|| {
                    let mut sets = (*m).clone();
                    digraph(g, &mut sets);
                    sets
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive", n),
            &(&includes, &read),
            |b, (g, m)| {
                b.iter(|| {
                    let mut sets = (*m).clone();
                    naive_closure(g, &mut sets);
                    sets
                })
            },
        );
    }
    group.finish();
}

fn bench_chain_worst_case(c: &mut Criterion) {
    // A long includes chain: O(n) sweeps for naive relaxation when the
    // edge order opposes the dependency order. (Measured caveat: with this
    // build's edge enumeration the order is favorable and naive converges
    // in O(1) sweeps — the Digraph algorithm's advantage is being
    // *order-independent*; see EXPERIMENTS.md Table 4.)
    let mut group = c.benchmark_group("digraph_vs_naive_chain");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for depth in [50usize, 200] {
        let grammar = lalr_corpus::synthetic::chain(depth);
        let (includes, read) = follow_inputs(&grammar);
        group.bench_with_input(
            BenchmarkId::new("digraph", depth),
            &(&includes, &read),
            |b, (g, m)| {
                b.iter(|| {
                    let mut sets = (*m).clone();
                    digraph(g, &mut sets);
                    sets
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive", depth),
            &(&includes, &read),
            |b, (g, m)| {
                b.iter(|| {
                    let mut sets = (*m).clone();
                    naive_closure(g, &mut sets);
                    sets
                })
            },
        );
    }
    group.finish();
}

fn bench_parallel_levels(c: &mut Criterion) {
    // Sequential DFS traversal vs the level-scheduled traversal at 1/2/4/8
    // threads, on the shapes that matter: a wide forest (maximally
    // parallel frontier), a real grammar, and a long chain (worst case —
    // every level holds a single component, so threading buys nothing and
    // this row isolates the scheduling overhead).
    let mut group = c.benchmark_group("digraph_parallel");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let inputs: Vec<(String, Grammar)> = vec![
        (
            "wide_forest_512".into(),
            lalr_corpus::synthetic::wide_forest(512),
        ),
        (
            "c_subset".into(),
            lalr_corpus::by_name("c_subset").expect("exists").grammar(),
        ),
        ("chain_200".into(), lalr_corpus::synthetic::chain(200)),
    ];
    for (name, grammar) in &inputs {
        let (includes, read) = follow_inputs(grammar);
        group.bench_with_input(
            BenchmarkId::new("sequential", name),
            &(&includes, &read),
            |b, (g, m)| {
                b.iter(|| {
                    let mut sets = (*m).clone();
                    digraph(g, &mut sets);
                    sets
                })
            },
        );
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("levels_t{threads}"), name),
                &(&includes, &read),
                |b, (g, m)| {
                    b.iter(|| {
                        let mut sets = (*m).clone();
                        digraph_levels(g, &mut sets, threads);
                        sets
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_follow_computation,
    bench_scc_collapse,
    bench_chain_worst_case,
    bench_parallel_levels
);
criterion_main!(benches);
