//! The textbook grammars separating the LR hierarchy (Table 3 rows).

use crate::CorpusEntry;

/// Conflict-free with zero look-ahead.
pub const LR0: CorpusEntry = CorpusEntry {
    name: "lr0_matched",
    source: "s : \"a\" s \"b\" | \"c\" ;",
    description: "matched a..c..b — LR(0)",
};

/// SLR(1) but not LR(0) (the expression grammar needs FOLLOW).
pub const SLR: CorpusEntry = CorpusEntry {
    name: "slr_expr",
    source: "e : e \"+\" t | t ; t : t \"*\" f | f ; f : \"(\" e \")\" | \"id\" ;",
    description: "dragon expressions — SLR(1), not LR(0)",
};

/// LALR(1) but not SLR(1): the pointer-assignment grammar.
pub const LALR_NOT_SLR: CorpusEntry = CorpusEntry {
    name: "lalr_not_slr",
    source: "s : l \"=\" r | r ; l : \"*\" r | \"id\" ; r : l ;",
    description: "L-values and R-values — LALR(1), not SLR(1)",
};

/// LR(1) but not LALR(1): merging contexts creates a reduce/reduce clash.
pub const LR1_NOT_LALR: CorpusEntry = CorpusEntry {
    name: "lr1_not_lalr",
    source: r#"
        s : "u" a "d" | "v" b "d" | "u" b "e" | "v" a "e" ;
        a : "c" ;
        b : "c" ;
    "#,
    description: "context-swapped reductions — LR(1), not LALR(1)",
};

/// Ambiguous (dangling else), not LR(k) for any k.
pub const DANGLING_ELSE: CorpusEntry = CorpusEntry {
    name: "dangling_else",
    source: "s : \"if\" s \"else\" s | \"if\" s | \"x\" ;",
    description: "dangling else — ambiguous",
};

/// A grammar whose `reads` relation has a cycle: not LR(k) for any k
/// (the paper's cycle theorem witness).
pub const READS_CYCLE: CorpusEntry = CorpusEntry {
    name: "reads_cycle",
    source: "s : a \"x\" ; a : b c | ; b : c a | ; c : a b | ;",
    description: "cyclic nullable reads — not LR(k) for any k",
};

/// LALR(1)-adequate, but NQLALR(1) reports a spurious reduce/reduce
/// conflict (the paper's warning against merging by GOTO target).
pub const NQLALR_WITNESS: CorpusEntry = CorpusEntry {
    name: "nqlalr_witness",
    source: r#"
        %start s
        s : "x" c "y" | "x" "g" "h" | "z" c "w" | "z" d "y" ;
        c : a r ;
        r : "t" | ;
        a : "g" ;
        d : "g" ;
    "#,
    description: "LALR(1) grammar on which NQLALR is spuriously inadequate",
};

/// All classic grammars, in hierarchy order.
pub fn all() -> Vec<CorpusEntry> {
    vec![
        LR0,
        SLR,
        LALR_NOT_SLR,
        LR1_NOT_LALR,
        DANGLING_ELSE,
        READS_CYCLE,
        NQLALR_WITNESS,
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_classics_parse() {
        for e in super::all() {
            let _ = e.grammar();
        }
    }
}
