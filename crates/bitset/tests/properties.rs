//! Property-based tests: `BitSet` algebra must agree with `BTreeSet` algebra.

use std::collections::BTreeSet;

use lalr_bitset::{BitMatrix, BitSet};
use proptest::prelude::*;

const UNIVERSE: usize = 300;

fn idx_vec() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..UNIVERSE, 0..64)
}

fn model(v: &[usize]) -> BTreeSet<usize> {
    v.iter().copied().collect()
}

proptest! {
    #[test]
    fn union_matches_model(a in idx_vec(), b in idx_vec()) {
        let sa = BitSet::from_indices(UNIVERSE, a.iter().copied());
        let sb = BitSet::from_indices(UNIVERSE, b.iter().copied());
        let got: Vec<usize> = (&sa | &sb).iter().collect();
        let want: Vec<usize> = model(&a).union(&model(&b)).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn intersection_matches_model(a in idx_vec(), b in idx_vec()) {
        let sa = BitSet::from_indices(UNIVERSE, a.iter().copied());
        let sb = BitSet::from_indices(UNIVERSE, b.iter().copied());
        let got: Vec<usize> = (&sa & &sb).iter().collect();
        let want: Vec<usize> = model(&a).intersection(&model(&b)).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn difference_matches_model(a in idx_vec(), b in idx_vec()) {
        let sa = BitSet::from_indices(UNIVERSE, a.iter().copied());
        let sb = BitSet::from_indices(UNIVERSE, b.iter().copied());
        let got: Vec<usize> = (&sa - &sb).iter().collect();
        let want: Vec<usize> = model(&a).difference(&model(&b)).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn xor_matches_model(a in idx_vec(), b in idx_vec()) {
        let sa = BitSet::from_indices(UNIVERSE, a.iter().copied());
        let sb = BitSet::from_indices(UNIVERSE, b.iter().copied());
        let got: Vec<usize> = (&sa ^ &sb).iter().collect();
        let want: Vec<usize> =
            model(&a).symmetric_difference(&model(&b)).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn count_matches_model(a in idx_vec()) {
        let sa = BitSet::from_indices(UNIVERSE, a.iter().copied());
        prop_assert_eq!(sa.count(), model(&a).len());
    }

    #[test]
    fn iter_is_sorted_and_deduped(a in idx_vec()) {
        let sa = BitSet::from_indices(UNIVERSE, a.iter().copied());
        let got: Vec<usize> = sa.iter().collect();
        let mut want: Vec<usize> = model(&a).into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn subset_iff_union_is_superset(a in idx_vec(), b in idx_vec()) {
        let sa = BitSet::from_indices(UNIVERSE, a.iter().copied());
        let sb = BitSet::from_indices(UNIVERSE, b.iter().copied());
        let u = &sa | &sb;
        prop_assert!(sa.is_subset(&u));
        prop_assert!(sb.is_subset(&u));
        prop_assert_eq!(sa.is_subset(&sb), u == sb);
    }

    #[test]
    fn union_with_is_idempotent(a in idx_vec(), b in idx_vec()) {
        let mut sa = BitSet::from_indices(UNIVERSE, a.iter().copied());
        let sb = BitSet::from_indices(UNIVERSE, b.iter().copied());
        sa.union_with(&sb);
        let snapshot = sa.clone();
        let changed = sa.union_with(&sb);
        prop_assert!(!changed);
        prop_assert_eq!(sa, snapshot);
    }

    #[test]
    fn matrix_rows_behave_like_independent_sets(
        rows in prop::collection::vec(idx_vec(), 1..6),
    ) {
        let mut m = BitMatrix::new(rows.len(), UNIVERSE);
        for (r, idxs) in rows.iter().enumerate() {
            for &i in idxs {
                m.set(r, i);
            }
        }
        for (r, idxs) in rows.iter().enumerate() {
            let got: Vec<usize> = m.iter_row(r).collect();
            let want: Vec<usize> = model(idxs).into_iter().collect();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn matrix_union_rows_matches_bitset_union(a in idx_vec(), b in idx_vec()) {
        let mut m = BitMatrix::new(2, UNIVERSE);
        for &i in &a { m.set(0, i); }
        for &i in &b { m.set(1, i); }
        m.union_rows(0, 1);
        let sa = BitSet::from_indices(UNIVERSE, a.iter().copied());
        let sb = BitSet::from_indices(UNIVERSE, b.iter().copied());
        prop_assert_eq!(m.row_to_bitset(0), &sa | &sb);
    }
}
