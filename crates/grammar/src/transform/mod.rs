//! Grammar transformations.
//!
//! These rewrite a [`crate::Grammar`] into an equivalent one (over the same
//! language, modulo the documented caveats): useless-symbol elimination
//! ([`reduce`]) and ε-production removal ([`remove_epsilon`]). Both return a
//! fresh grammar rebuilt through [`crate::GrammarBuilder`], so all grammar
//! invariants keep holding.

mod epsilon;
mod reduce;

pub use epsilon::remove_epsilon;
pub use reduce::{reduce, ReduceOutcome};
