//! LALR(1) by merging canonical LR(1) states.
//!
//! This is the textbook (pre-DeRemer–Pennello) way to obtain LALR(1)
//! look-ahead sets: build the full canonical LR(1) machine, then merge every
//! group of states sharing an LR(0) core, unioning reduction look-aheads.
//! It is exact — the definition of LALR(1) — and therefore serves as the
//! oracle the efficient algorithm is validated against, and as the slow
//! baseline of timing experiment **E2**.

use rustc_hash::FxHashMap;

use lalr_bitset::BitSet;
use lalr_grammar::{Grammar, ProdId};

use crate::item::ItemSet;
use crate::lr0::{Lr0Automaton, StateId};
use crate::lr1::Lr1Automaton;

/// LALR(1) look-ahead sets obtained by merging, keyed by LR(0) state.
#[derive(Debug, Clone)]
pub struct MergedLalr {
    la: FxHashMap<(StateId, ProdId), BitSet>,
    lr1_states: usize,
}

impl MergedLalr {
    /// The look-ahead set for reducing `prod` in LR(0) state `state`, if
    /// that reduction exists there.
    pub fn la(&self, state: StateId, prod: ProdId) -> Option<&BitSet> {
        self.la.get(&(state, prod))
    }

    /// Number of `(state, production)` reduction points.
    pub fn reduction_count(&self) -> usize {
        self.la.len()
    }

    /// Size of the canonical LR(1) machine that was merged (for the state
    /// explosion column of Table 2).
    pub fn lr1_state_count(&self) -> usize {
        self.lr1_states
    }

    /// Iterates over `((state, production), la)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&(StateId, ProdId), &BitSet)> {
        self.la.iter()
    }
}

/// Merges `lr1` onto the states of `lr0`, producing LALR(1) look-aheads.
///
/// # Panics
///
/// Panics if `lr1` and `lr0` were built from different grammars (an LR(1)
/// core then fails to resolve to an LR(0) state).
///
/// # Examples
///
/// ```
/// use lalr_automata::{merge_lr1, Lr0Automaton, Lr1Automaton};
/// use lalr_grammar::parse_grammar;
///
/// let g = parse_grammar("s : \"a\" ;")?;
/// let merged = merge_lr1(&g, &Lr1Automaton::build(&g), &Lr0Automaton::build(&g));
/// assert_eq!(merged.reduction_count(), 2); // s → a, and the accept item
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn merge_lr1(grammar: &Grammar, lr1: &Lr1Automaton, lr0: &Lr0Automaton) -> MergedLalr {
    let _ = grammar;
    // Index LR(0) states by kernel.
    let mut by_core: FxHashMap<&ItemSet, StateId> = FxHashMap::default();
    for s in lr0.states() {
        by_core.insert(lr0.kernel(s), s);
    }

    let mut la: FxHashMap<(StateId, ProdId), BitSet> = FxHashMap::default();
    for s1 in lr1.states() {
        let core = lr1.state(s1).core();
        let s0 = *by_core
            .get(&core)
            .expect("every LR(1) core is an LR(0) state of the same grammar");
        for (prod, set) in lr1.reductions(s1) {
            la.entry((s0, *prod))
                .and_modify(|acc| {
                    acc.union_with(set);
                })
                .or_insert_with(|| set.clone());
        }
    }
    MergedLalr {
        la,
        lr1_states: lr1.state_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalr_grammar::{parse_grammar, Terminal};

    fn la_names(g: &Grammar, set: &BitSet) -> Vec<String> {
        set.iter()
            .map(|i| g.terminal_name(Terminal::new(i)).to_string())
            .collect()
    }

    #[test]
    fn merging_unions_lookaheads_of_split_states() {
        // The classic LALR example: canonical LR(1) keeps `a → c` apart
        // with LA {d} and {e}; merging unions them to {d, e}.
        // (u/v are the distinguishing guard terminals.)
        let g = parse_grammar("s : \"u\" a \"d\" | \"v\" a \"e\" ; a : \"c\" ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let lr1 = Lr1Automaton::build(&g);
        let merged = merge_lr1(&g, &lr1, &lr0);

        let c = g.terminal_by_name("c").unwrap();
        // LR(0) merges "a·c" and "b·c" successors into one state reached by c.
        let u = g.terminal_by_name("u").unwrap();
        let s_a = lr0.transition(StateId::START, u.into()).unwrap();
        let s_c = lr0.transition(s_a, c.into()).unwrap();
        let a_nt = g.nonterminal_by_name("a").unwrap();
        let a_prod = g.productions_of(a_nt)[0];
        let set = merged.la(s_c, a_prod).expect("reduction exists");
        assert_eq!(la_names(&g, set), vec!["d", "e"]);
    }

    #[test]
    fn every_lr0_reduction_has_merged_la() {
        let g =
            parse_grammar("e : e \"+\" t | t ; t : t \"*\" f | f ; f : \"(\" e \")\" | \"id\" ;")
                .unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let merged = merge_lr1(&g, &Lr1Automaton::build(&g), &lr0);
        for s in lr0.states() {
            for &p in lr0.reductions(s) {
                let set = merged.la(s, p).expect("LA exists for every reduction");
                assert!(!set.is_empty());
            }
        }
    }

    #[test]
    fn lr1_state_count_recorded() {
        let g = parse_grammar("s : \"a\" ;").unwrap();
        let lr1 = Lr1Automaton::build(&g);
        let merged = merge_lr1(&g, &lr1, &Lr0Automaton::build(&g));
        assert_eq!(merged.lr1_state_count(), lr1.state_count());
    }
}
