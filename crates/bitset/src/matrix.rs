//! The [`BitMatrix`] type.

use std::fmt;

use crate::kernels::{self, RowLayout};
use crate::shard::RowsMut;
use crate::{words_for, BITS};

/// A rectangular bit matrix: `rows` rows, each a bit set over `0..cols`.
///
/// The DeRemer–Pennello computation keeps one terminal set per nonterminal
/// transition (`Read`, `Follow`) and per reduction item (`LA`). Storing them
/// as rows of one contiguous matrix keeps the Digraph traversal's row unions
/// cache-friendly and allocation-free.
///
/// # Examples
///
/// ```
/// use lalr_bitset::BitMatrix;
///
/// let mut m = BitMatrix::new(3, 100);
/// m.set(0, 42);
/// m.set(1, 7);
/// m.union_rows(0, 1); // row 0 |= row 1
/// assert!(m.get(0, 7) && m.get(0, 42));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BitMatrix {
    words: Vec<usize>,
    rows: usize,
    cols: usize,
    row_words: usize,
}

impl BitMatrix {
    /// Creates an all-zero matrix of `rows × cols` bits.
    pub fn new(rows: usize, cols: usize) -> Self {
        let row_words = words_for(cols);
        BitMatrix {
            words: vec![0; rows * row_words],
            rows,
            cols,
            row_words,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (universe of each row).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The [`RowLayout`] this matrix's rows dispatch under, derived from
    /// the column universe (not stored — the matrix stays a plain
    /// comparable/hashable/serializable value).
    #[inline]
    pub fn layout(&self) -> RowLayout {
        RowLayout::select(self.cols)
    }

    #[inline]
    fn row_range(&self, row: usize) -> std::ops::Range<usize> {
        assert!(row < self.rows, "row {row} out of range 0..{}", self.rows);
        let start = row * self.row_words;
        start..start + self.row_words
    }

    /// Sets bit `(row, col)`, returning `true` if it was newly set.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize) -> bool {
        assert!(col < self.cols, "col {col} out of range 0..{}", self.cols);
        let r = self.row_range(row);
        let w = &mut self.words[r][col / BITS];
        let mask = 1usize << (col % BITS);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Clears bit `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    #[inline]
    pub fn unset(&mut self, row: usize, col: usize) {
        assert!(col < self.cols, "col {col} out of range 0..{}", self.cols);
        let r = self.row_range(row);
        self.words[r][col / BITS] &= !(1usize << (col % BITS));
    }

    /// Tests bit `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range. Out-of-range `col` reads as `false`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        if col >= self.cols {
            return false;
        }
        let r = self.row_range(row);
        self.words[r][col / BITS] & (1usize << (col % BITS)) != 0
    }

    /// `row[dst] |= row[src]`; returns `true` if `dst` changed.
    ///
    /// Rows may coincide (then nothing changes).
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range.
    pub fn union_rows(&mut self, dst: usize, src: usize) -> bool {
        if dst == src {
            return false;
        }
        let rd = self.row_range(dst);
        let rs = self.row_range(src);
        let mut changed = false;
        // Split via split_at_mut to obtain two disjoint row slices.
        let (lo, hi, dst_first) = if rd.start < rs.start {
            let (a, b) = self.words.split_at_mut(rs.start);
            (&mut a[rd.clone()], &mut b[..self.row_words], true)
        } else {
            let (a, b) = self.words.split_at_mut(rd.start);
            (&mut a[rs.clone()], &mut b[..self.row_words], false)
        };
        let (dst_row, src_row) = if dst_first { (lo, hi) } else { (hi, lo) };
        changed |= kernels::or_into(dst_row, src_row);
        kernels::debug_assert_tail_clear(dst_row, self.cols);
        changed
    }

    /// ORs an external word slice into `row`; returns `true` if it changed.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `src` is shorter than a row.
    pub fn union_row_with_words(&mut self, row: usize, src: &[usize]) -> bool {
        let r = self.row_range(row);
        let changed = kernels::or_into(&mut self.words[r.clone()], src);
        kernels::debug_assert_tail_clear(&self.words[r], self.cols);
        changed
    }

    /// Borrows the raw words of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_words(&self, row: usize) -> &[usize] {
        let r = self.row_range(row);
        &self.words[r]
    }

    /// Borrows `row` as a [`crate::BitSetRef`] set view, without copying.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> crate::BitSetRef<'_> {
        crate::BitSetRef::from_words(self.row_words(row), self.cols)
    }

    /// Copies `src` row over `dst` row.
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range.
    pub fn copy_row(&mut self, dst: usize, src: usize) {
        if dst == src {
            return;
        }
        let rs = self.row_range(src);
        let rd = self.row_range(dst);
        // Split into disjoint slices so the copy kernel runs without a
        // temporary row allocation.
        let (dst_row, src_row) = if rd.start < rs.start {
            let (a, b) = self.words.split_at_mut(rs.start);
            (&mut a[rd], &b[..self.row_words])
        } else {
            let (a, b) = self.words.split_at_mut(rd.start);
            (&mut b[..self.row_words], &a[rs])
        };
        kernels::copy(dst_row, src_row);
    }

    /// Clears every bit of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn clear_row(&mut self, row: usize) {
        let r = self.row_range(row);
        for w in &mut self.words[r] {
            *w = 0;
        }
    }

    /// Number of set bits in `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_count(&self, row: usize) -> usize {
        kernels::popcount(self.row_words(row))
    }

    /// Returns `true` if `row` has no set bits.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_is_empty(&self, row: usize) -> bool {
        self.row_words(row).iter().all(|&w| w == 0)
    }

    /// Iterates over the set columns of `row` in increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn iter_row(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        let words = self.row_words(row);
        words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * BITS + bit)
            })
        })
    }

    /// Extracts `row` as an owned [`crate::BitSet`].
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_to_bitset(&self, row: usize) -> crate::BitSet {
        crate::BitSet::from_indices(self.cols, self.iter_row(row))
    }

    /// Builds a matrix directly from its raw word storage.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` is not exactly `rows * words_for(cols)`.
    pub(crate) fn from_raw(words: Vec<usize>, rows: usize, cols: usize) -> Self {
        let row_words = words_for(cols);
        assert_eq!(
            words.len(),
            rows * row_words,
            "raw storage must hold exactly rows * row_words words"
        );
        BitMatrix {
            words,
            rows,
            cols,
            row_words,
        }
    }

    /// Splits the matrix into two mutable views: rows `0..mid` and
    /// `mid..rows`.
    ///
    /// Both views address rows by their *global* index, so code written
    /// against [`RowsMut`] does not change when the split point moves. The
    /// views borrow disjoint word ranges, so both can be mutated at once
    /// (e.g. from two scoped threads).
    ///
    /// # Panics
    ///
    /// Panics if `mid > rows`.
    pub fn split_rows_mut(&mut self, mid: usize) -> (RowsMut<'_>, RowsMut<'_>) {
        assert!(
            mid <= self.rows,
            "split point {mid} out of range 0..={}",
            self.rows
        );
        let (lo, hi) = self.words.split_at_mut(mid * self.row_words);
        (
            RowsMut::new(lo, 0, mid, self.row_words, self.cols),
            RowsMut::new(hi, mid, self.rows - mid, self.row_words, self.cols),
        )
    }

    /// Partitions the matrix into exactly `parts` contiguous mutable row
    /// bands of near-equal size (the first `rows % parts` bands hold one
    /// extra row; trailing bands may be empty when `parts > rows`).
    ///
    /// The band list is the write side of a fork/join scatter: hand band
    /// `i` to worker `i`, let each worker fill only its own rows, and join.
    /// Disjointness is guaranteed by construction — each [`RowsMut`] owns a
    /// non-overlapping `&mut` word range — so no synchronization is needed
    /// beyond the join itself.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0`.
    pub fn partition_rows_mut(&mut self, parts: usize) -> Vec<RowsMut<'_>> {
        assert!(parts > 0, "cannot partition into zero bands");
        let base = self.rows / parts;
        let extra = self.rows % parts;
        let row_words = self.row_words;
        let cols = self.cols;
        let mut bands = Vec::with_capacity(parts);
        let mut rest: &mut [usize] = &mut self.words;
        let mut start = 0;
        for i in 0..parts {
            let len = base + usize::from(i < extra);
            let (band, tail) = rest.split_at_mut(len * row_words);
            bands.push(RowsMut::new(band, start, len, row_words, cols));
            start += len;
            rest = tail;
        }
        bands
    }

    /// Reflexive-transitive closure interpretation: treats the matrix as an
    /// adjacency relation over `rows == cols` nodes and computes its
    /// transitive closure in place (Warshall), used as the *naive* reference
    /// against which the Digraph algorithm is benchmarked.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn transitive_closure(&mut self) {
        assert_eq!(
            self.rows, self.cols,
            "transitive closure needs a square matrix"
        );
        for k in 0..self.rows {
            for i in 0..self.rows {
                if self.get(i, k) {
                    self.union_rows(i, k);
                }
            }
        }
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix({}x{})", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  {r}: ")?;
            f.debug_set().entries(self.iter_row(r)).finish()?;
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_unset() {
        let mut m = BitMatrix::new(4, 130);
        assert!(m.set(0, 0));
        assert!(m.set(3, 129));
        assert!(!m.set(3, 129));
        assert!(m.get(0, 0));
        assert!(m.get(3, 129));
        assert!(!m.get(1, 0));
        m.unset(0, 0);
        assert!(!m.get(0, 0));
    }

    #[test]
    fn union_rows_both_directions() {
        let mut m = BitMatrix::new(3, 64);
        m.set(0, 1);
        m.set(2, 5);
        assert!(m.union_rows(0, 2), "dst < src");
        assert!(m.get(0, 5));
        assert!(m.union_rows(2, 0), "src < dst");
        assert!(m.get(2, 1));
        assert!(!m.union_rows(1, 1), "self union is no-op");
    }

    #[test]
    fn union_row_with_words_matches_union_rows() {
        let mut a = BitMatrix::new(2, 200);
        a.set(1, 150);
        a.set(1, 3);
        let src: Vec<usize> = a.row_words(1).to_vec();
        let mut b = a.clone();
        a.union_rows(0, 1);
        b.union_row_with_words(0, &src);
        assert_eq!(a, b);
    }

    #[test]
    fn row_iter_and_count() {
        let mut m = BitMatrix::new(2, 100);
        for c in [0, 63, 64, 99] {
            m.set(1, c);
        }
        assert_eq!(m.iter_row(1).collect::<Vec<_>>(), vec![0, 63, 64, 99]);
        assert_eq!(m.row_count(1), 4);
        assert!(m.row_is_empty(0));
        assert!(!m.row_is_empty(1));
    }

    #[test]
    fn copy_and_clear_row() {
        let mut m = BitMatrix::new(2, 70);
        m.set(0, 69);
        m.copy_row(1, 0);
        assert!(m.get(1, 69));
        m.clear_row(0);
        assert!(m.row_is_empty(0));
        assert!(m.get(1, 69), "clearing one row leaves others intact");
    }

    #[test]
    fn row_to_bitset_round_trip() {
        let mut m = BitMatrix::new(1, 90);
        m.set(0, 2);
        m.set(0, 89);
        let s = m.row_to_bitset(0);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 89]);
        assert_eq!(s.len(), 90);
    }

    #[test]
    fn warshall_closure_on_chain() {
        // 0 -> 1 -> 2 -> 3
        let mut m = BitMatrix::new(4, 4);
        m.set(0, 1);
        m.set(1, 2);
        m.set(2, 3);
        m.transitive_closure();
        assert!(m.get(0, 3));
        assert!(m.get(1, 3));
        assert!(!m.get(3, 0));
    }

    #[test]
    fn warshall_closure_on_cycle() {
        let mut m = BitMatrix::new(3, 3);
        m.set(0, 1);
        m.set(1, 2);
        m.set(2, 0);
        m.transitive_closure();
        for i in 0..3 {
            for j in 0..3 {
                assert!(m.get(i, j), "cycle closure is complete at ({i},{j})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn closure_requires_square() {
        BitMatrix::new(2, 3).transitive_closure();
    }
}
