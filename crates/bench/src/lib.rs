//! The evaluation harness: regenerates every table and figure of the
//! paper's empirical section (see `DESIGN.md` for the experiment index).
//!
//! The `report` binary prints the static tables:
//!
//! ```text
//! cargo run -p lalr-bench --bin report            # everything
//! cargo run -p lalr-bench --bin report -- table1  # one table
//! ```
//!
//! Timing experiments live in `benches/` (Criterion):
//!
//! * `lookahead_methods` — Table 2 (DP vs propagation vs LR(1)-merge vs SLR)
//! * `scaling` — Figure 1 (method time vs grammar size)
//! * `digraph_ablation` — E6 (Digraph vs naive closure vs Warshall)
//! * `set_repr` — E7 (bit-set vs hash-set Digraph)
//! * `selective` — E8 (full vs inadequate-states-only computation)
//! * `parse_throughput` — runtime driver sanity benchmark

// `unsafe` is denied (not forbidden) because the counting global
// allocator in `alloc_counter` must delegate to `std::alloc::System`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_counter;
pub mod methods;
pub mod report;
