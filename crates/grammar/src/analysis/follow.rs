//! `FOLLOW` sets (the SLR(1) baseline's look-ahead approximation).

use lalr_bitset::{BitMatrix, BitSet};
use lalr_digraph::{digraph, Graph};

use crate::analysis::first::FirstSets;
use crate::grammar::Grammar;
use crate::symbol::{NonTerminal, Symbol, Terminal};

/// `FOLLOW(A)` for every nonterminal: the terminals that can appear
/// immediately after `A` in a sentential form (with `$` after the start
/// symbol).
///
/// Computed, like everything in this suite, as a Digraph instance: the
/// initial set of `A` collects `FIRST(β)` over occurrences `B → α A β`, and
/// `A` points at `B` whenever `β ⇒* ε` (then `FOLLOW(A) ⊇ FOLLOW(B)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FollowSets {
    sets: BitMatrix,
}

impl FollowSets {
    /// Computes `FOLLOW` for all nonterminals.
    ///
    /// # Examples
    ///
    /// ```
    /// use lalr_grammar::{analysis::{nullable, FirstSets, FollowSets}, parse_grammar};
    ///
    /// let g = parse_grammar("s : a \"b\" ; a : \"x\" ;")?;
    /// let n = nullable(&g);
    /// let first = FirstSets::compute(&g, &n);
    /// let follow = FollowSets::compute(&g, &first);
    /// let a = g.nonterminal_by_name("a").unwrap();
    /// let b = g.terminal_by_name("b").unwrap();
    /// assert!(follow.contains(a, b));
    /// # Ok::<(), lalr_grammar::GrammarError>(())
    /// ```
    pub fn compute(grammar: &Grammar, first: &FirstSets) -> FollowSets {
        let n = grammar.nonterminal_count();
        let mut sets = BitMatrix::new(n, grammar.terminal_count());
        let mut graph = Graph::new(n);

        // FOLLOW(<start>) = {$}; the user start inherits it through the
        // augmented production <start> → S (handled by the generic loop).
        sets.set(NonTerminal::AUGMENTED_START.index(), Terminal::EOF.index());

        for p in grammar.productions() {
            let rhs = p.rhs();
            for (i, &sym) in rhs.iter().enumerate() {
                let Symbol::NonTerminal(a) = sym else {
                    continue;
                };
                let beta = &rhs[i + 1..];
                let (first_beta, beta_nullable) = first.first_of(beta);
                sets.union_row_with_words(
                    a.index(),
                    bitset_words(&first_beta, grammar.terminal_count()),
                );
                if beta_nullable {
                    // FOLLOW(A) ⊇ FOLLOW(lhs)
                    graph.add_edge_dedup(a.index(), p.lhs().index());
                }
            }
        }
        digraph(&graph, &mut sets);
        FollowSets { sets }
    }

    /// `true` when `t ∈ FOLLOW(nt)`.
    #[inline]
    pub fn contains(&self, nt: NonTerminal, t: Terminal) -> bool {
        self.sets.get(nt.index(), t.index())
    }

    /// `FOLLOW(nt)` as an owned bit set over terminal indices.
    pub fn of(&self, nt: NonTerminal) -> BitSet {
        self.sets.row_to_bitset(nt.index())
    }

    /// Iterates over `FOLLOW(nt)`.
    pub fn iter(&self, nt: NonTerminal) -> impl Iterator<Item = Terminal> + '_ {
        self.sets.iter_row(nt.index()).map(Terminal::new)
    }
}

/// Views a `BitSet` over `0..cols` as raw words for a row-union.
fn bitset_words(set: &BitSet, cols: usize) -> &[usize] {
    debug_assert_eq!(set.len(), cols);
    // BitSet doesn't expose words publicly; rebuild via iteration would cost
    // allocations, so we keep a crate-private accessor here instead.
    set.as_words()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{nullable, FirstSets};
    use crate::parse_grammar;

    fn follow_names(src: &str, nt: &str) -> Vec<String> {
        let g = parse_grammar(src).unwrap();
        let f = FirstSets::compute(&g, &nullable(&g));
        let fo = FollowSets::compute(&g, &f);
        let n = g.nonterminal_by_name(nt).unwrap();
        fo.iter(n).map(|t| g.terminal_name(t).to_string()).collect()
    }

    const EXPR: &str = r#"
        e : e "+" t | t ;
        t : t "*" f | f ;
        f : "(" e ")" | "id" ;
    "#;

    #[test]
    fn dragon_book_expression_follow_sets() {
        // The classic: FOLLOW(E) = {+, ), $}, FOLLOW(T) = {+, *, ), $},
        // FOLLOW(F) = {+, *, ), $}.
        assert_eq!(follow_names(EXPR, "e"), vec!["$", "+", ")"]);
        assert_eq!(follow_names(EXPR, "t"), vec!["$", "+", "*", ")"]);
        assert_eq!(follow_names(EXPR, "f"), vec!["$", "+", "*", ")"]);
    }

    #[test]
    fn start_symbol_followed_by_eof() {
        assert_eq!(follow_names("s : \"a\" ;", "s"), vec!["$"]);
    }

    #[test]
    fn nullable_tail_propagates_lhs_follow() {
        // In s → a b, b nullable ⇒ FOLLOW(a) ⊇ FOLLOW(s) = {$}.
        assert_eq!(
            follow_names("s : a b ; a : \"x\" ; b : \"y\" | ;", "a"),
            vec!["$", "y"]
        );
    }

    #[test]
    fn follow_through_mutual_recursion() {
        let names = follow_names("s : a \"q\" ; a : b ; b : a | \"z\" ;", "b");
        assert_eq!(names, vec!["q"]);
    }
}
