//! The enabled recorder: aggregates spans and counters under one
//! mutex, producing a [`PhaseReport`].

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

use crate::recorder::Recorder;
use crate::report::{summarize, PhaseReport, SpanEvent};

/// A probe returning the process-wide cumulative `(allocations, bytes)`
/// — typically `lalr_bench::alloc_counter::totals`. Sampled at span
/// enter and exit to attribute allocation deltas to phases.
pub type AllocProbe = fn() -> (u64, u64);

/// One open (entered, not yet exited) span on some thread.
struct OpenSpan {
    name: &'static str,
    start_ns: u64,
    allocs: u64,
    bytes: u64,
}

#[derive(Default)]
struct State {
    /// Per-thread span stacks, keyed by dense first-record order so
    /// reports use small stable thread indices.
    threads: Vec<(ThreadId, Vec<OpenSpan>)>,
    counters: BTreeMap<&'static str, u64>,
    events: Vec<SpanEvent>,
}

/// A [`Recorder`] that keeps everything.
///
/// All state lives under a single mutex; the recorder is meant for the
/// profiling path, where a handful of span crossings per pipeline phase
/// are noise next to the phases themselves. Counters are deterministic
/// per input; span timings are not.
///
/// Note the recorder's own bookkeeping allocates *inside* open spans,
/// so with an [`AllocProbe`] wired in, per-phase allocation deltas
/// include a few recorder-internal allocations (vector growth, event
/// push) on top of the pipeline's own.
pub struct CollectingRecorder {
    origin: Instant,
    alloc_probe: Option<AllocProbe>,
    state: Mutex<State>,
}

impl CollectingRecorder {
    /// A recorder with timing and counters but no allocation
    /// attribution.
    pub fn new() -> Self {
        CollectingRecorder {
            origin: Instant::now(),
            alloc_probe: None,
            state: Mutex::new(State::default()),
        }
    }

    /// A recorder that additionally samples `probe` at span boundaries
    /// to report per-phase allocation deltas.
    pub fn with_alloc_probe(probe: AllocProbe) -> Self {
        CollectingRecorder {
            alloc_probe: Some(probe),
            ..CollectingRecorder::new()
        }
    }

    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn probe(&self) -> (u64, u64) {
        self.alloc_probe.map(|p| p()).unwrap_or((0, 0))
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        let state = self.state.lock().unwrap();
        state.counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshots everything recorded so far into a [`PhaseReport`].
    ///
    /// Open spans are not included; callers should extract the report
    /// after the instrumented work returns.
    pub fn report(&self) -> PhaseReport {
        let total_ns = self.now_ns();
        let state = self.state.lock().unwrap();
        let mut events = state.events.clone();
        events.sort_by_key(|e| (e.start_ns, e.tid));
        let (phases, nested) = summarize(&events);
        PhaseReport {
            phases,
            nested,
            counters: state.counters.iter().map(|(&k, &v)| (k, v)).collect(),
            events,
            total_ns,
        }
    }
}

impl Default for CollectingRecorder {
    fn default() -> Self {
        CollectingRecorder::new()
    }
}

impl Recorder for CollectingRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn span_enter(&self, name: &'static str) {
        let start_ns = self.now_ns();
        let (allocs, bytes) = self.probe();
        let tid = std::thread::current().id();
        let mut state = self.state.lock().unwrap();
        let index = match state.threads.iter().position(|(t, _)| *t == tid) {
            Some(i) => i,
            None => {
                state.threads.push((tid, Vec::new()));
                state.threads.len() - 1
            }
        };
        state.threads[index].1.push(OpenSpan {
            name,
            start_ns,
            allocs,
            bytes,
        });
    }

    fn span_exit(&self, name: &'static str) {
        let end_ns = self.now_ns();
        let (allocs, bytes) = self.probe();
        let tid = std::thread::current().id();
        let mut state = self.state.lock().unwrap();
        let Some(index) = state.threads.iter().position(|(t, _)| *t == tid) else {
            debug_assert!(
                false,
                "span_exit({name}) on a thread that never entered a span"
            );
            return;
        };
        let Some(open) = state.threads[index].1.pop() else {
            debug_assert!(false, "span_exit({name}) without a matching span_enter");
            return;
        };
        debug_assert_eq!(open.name, name, "span exit out of LIFO order");
        let depth = state.threads[index].1.len();
        state.events.push(SpanEvent {
            name: open.name,
            tid: index,
            depth,
            start_ns: open.start_ns,
            dur_ns: end_ns.saturating_sub(open.start_ns),
            allocs: allocs.saturating_sub(open.allocs),
            bytes: bytes.saturating_sub(open.bytes),
        });
    }

    fn add(&self, counter: &'static str, delta: u64) {
        let mut state = self.state.lock().unwrap();
        *state.counters.entry(counter).or_insert(0) += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::span;

    #[test]
    fn spans_nest_and_time_monotonically() {
        let rec = CollectingRecorder::new();
        {
            let _outer = span(&rec, "outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span(&rec, "inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let report = rec.report();
        assert_eq!(report.events.len(), 2);
        let outer = report.events.iter().find(|e| e.name == "outer").unwrap();
        let inner = report.events.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.tid, 0);
        // Containment: the inner span starts no earlier and ends no
        // later than the outer one.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns() <= outer.end_ns());
        assert!(inner.dur_ns <= outer.dur_ns);
        assert!(outer.dur_ns > 0, "sleeping spans have nonzero duration");
        // Only the outer span is a top-level phase.
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].name, "outer");
        assert_eq!(report.nested.len(), 1);
        assert_eq!(report.nested[0].name, "inner");
        assert!(report.total_ns >= outer.dur_ns);
    }

    #[test]
    fn counters_aggregate_and_sort() {
        let rec = CollectingRecorder::new();
        rec.add("zeta", 1);
        rec.add("alpha", 2);
        rec.add("zeta", 41);
        let report = rec.report();
        assert_eq!(report.counters, vec![("alpha", 2), ("zeta", 42)]);
        assert_eq!(rec.counter("zeta"), 42);
        assert_eq!(rec.counter("missing"), 0);
        assert_eq!(report.counter("alpha"), Some(2));
        assert_eq!(report.counter("missing"), None);
    }

    #[test]
    fn worker_threads_get_distinct_dense_ids() {
        let rec = CollectingRecorder::new();
        {
            let _main = span(&rec, "main");
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    scope.spawn(|| {
                        let _w = span(&rec, "worker");
                    });
                }
            });
        }
        let report = rec.report();
        let mut tids: Vec<usize> = report
            .events
            .iter()
            .filter(|e| e.name == "worker")
            .map(|e| e.tid)
            .collect();
        tids.sort_unstable();
        assert_eq!(tids, vec![1, 2], "workers follow the primary thread");
        // Worker spans are depth 0 on their own threads, but not
        // counted as top-level phases (tid != 0).
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].name, "main");
    }

    #[test]
    fn calls_accumulate_per_phase() {
        let rec = CollectingRecorder::new();
        for _ in 0..3 {
            let _s = span(&rec, "repeated");
        }
        let report = rec.report();
        let phase = report.phase("repeated").unwrap();
        assert_eq!(phase.calls, 3);
        assert_eq!(report.phase_sum_ns(), phase.total_ns);
    }

    #[test]
    fn alloc_probe_deltas_are_attributed() {
        fn fake_probe() -> (u64, u64) {
            // A monotonically growing fake counter: each call "allocates"
            // one block of 10 bytes.
            use std::sync::atomic::{AtomicU64, Ordering};
            static CALLS: AtomicU64 = AtomicU64::new(0);
            let n = CALLS.fetch_add(1, Ordering::Relaxed) + 1;
            (n, n * 10)
        }
        let rec = CollectingRecorder::with_alloc_probe(fake_probe);
        {
            let _s = span(&rec, "phase");
        }
        let report = rec.report();
        let phase = report.phase("phase").unwrap();
        // Enter samples call 1, exit samples call 2: delta is 1 alloc,
        // 10 bytes.
        assert_eq!(phase.allocs, 1);
        assert_eq!(phase.bytes, 10);
    }

    #[test]
    fn text_report_is_key_sorted() {
        let rec = CollectingRecorder::new();
        {
            let _b = span(&rec, "beta");
        }
        {
            let _a = span(&rec, "alpha");
        }
        rec.add("z.count", 9);
        rec.add("a.count", 1);
        let text = rec.report().to_text();
        let alpha = text.find("alpha").unwrap();
        let beta = text.find("beta").unwrap();
        assert!(alpha < beta, "phases sorted by name:\n{text}");
        let a = text.find("a.count = 1").unwrap();
        let z = text.find("z.count = 9").unwrap();
        assert!(a < z, "counters key-sorted:\n{text}");
    }
}
