//! The embedded realistic grammars (Table 1 rows).

use crate::CorpusEntry;

/// The dragon-book arithmetic expression grammar.
pub const EXPR: CorpusEntry = CorpusEntry {
    name: "expr",
    source: include_str!("../grammars/expr.g"),
    description: "dragon-book arithmetic expressions (SLR(1))",
};

/// RFC 8259-shaped JSON.
pub const JSON: CorpusEntry = CorpusEntry {
    name: "json",
    source: include_str!("../grammars/json.g"),
    description: "JSON values, objects, arrays",
};

/// A Pascal subset.
pub const PASCAL: CorpusEntry = CorpusEntry {
    name: "pascal",
    source: include_str!("../grammars/pascal.g"),
    description: "Pascal subset: declarations, statements, expressions",
};

/// An ANSI-C subset with the full expression precedence ladder.
pub const C_SUBSET: CorpusEntry = CorpusEntry {
    name: "c_subset",
    source: include_str!("../grammars/c_subset.g"),
    description: "ANSI C subset with 15-level expression ladder",
};

/// An ALGOL-60-flavoured grammar.
pub const ALGOL60: CorpusEntry = CorpusEntry {
    name: "algol60",
    source: include_str!("../grammars/algol60.g"),
    description: "ALGOL-60 Revised-Report-shaped blocks and statements",
};

/// An Ada-83 subset.
pub const ADA_SUBSET: CorpusEntry = CorpusEntry {
    name: "ada_subset",
    source: include_str!("../grammars/ada_subset.g"),
    description: "Ada-83 subset: packages, subprograms, statements",
};

/// A small Java-like language.
pub const TINY_JAVA: CorpusEntry = CorpusEntry {
    name: "tiny_java",
    source: include_str!("../grammars/tiny_java.g"),
    description: "Java-like classes, members, statements, expressions",
};

/// A SQL-92-entry-level-shaped subset.
pub const SQL_SUBSET: CorpusEntry = CorpusEntry {
    name: "sql_subset",
    source: include_str!("../grammars/sql_subset.g"),
    description: "SQL subset: SELECT with joins/subqueries, DML, DDL",
};

/// A Lua 5-flavoured subset.
pub const LUA_SUBSET: CorpusEntry = CorpusEntry {
    name: "lua_subset",
    source: include_str!("../grammars/lua_subset.g"),
    description: "Lua subset: chunks, functions, tables, operator ladder",
};

/// All realistic grammars, smallest first.
pub fn all() -> Vec<CorpusEntry> {
    vec![
        EXPR, JSON, LUA_SUBSET, PASCAL, ALGOL60, ADA_SUBSET, TINY_JAVA, SQL_SUBSET, C_SUBSET,
    ]
}

#[cfg(test)]
mod tests {
    use lalr_grammar::GrammarStats;

    #[test]
    fn corpus_spans_small_to_large() {
        let sizes: Vec<usize> = super::all()
            .iter()
            .map(|e| GrammarStats::compute(&e.grammar()).productions)
            .collect();
        assert!(sizes[0] < 10, "expr is tiny: {}", sizes[0]);
        assert!(
            *sizes.last().unwrap() >= 90,
            "the C subset is substantial: {}",
            sizes.last().unwrap()
        );
    }

    #[test]
    fn realistic_grammars_have_no_useless_symbols() {
        for e in super::all() {
            let stats = GrammarStats::compute(&e.grammar());
            assert_eq!(stats.useless_nonterminals, 0, "{}", e.name);
        }
    }

    #[test]
    fn nullable_and_recursion_structure_present() {
        // The corpus must exercise the interesting regimes: ε-productions
        // (reads/includes edges) and left recursion.
        let entries = super::all();
        let with_nullable = entries
            .iter()
            .filter(|e| GrammarStats::compute(&e.grammar()).nullable_nonterminals > 0)
            .count();
        let with_left_rec = entries
            .iter()
            .filter(|e| GrammarStats::compute(&e.grammar()).left_recursive > 0)
            .count();
        assert!(with_nullable >= 4);
        assert!(with_left_rec >= 6);
    }
}
