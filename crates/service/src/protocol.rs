//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line. Requests are objects
//! with an `"op"` discriminator; responses carry `"ok"` plus either the
//! op's payload or an `"error"` object. Serialization is key-sorted
//! (see the vendored `serde_json` shim), so equal responses are equal
//! byte strings — the property the soak test's differential comparison
//! uses.
//!
//! ```text
//! → {"op":"compile","grammar":"e : \"x\" ;"}
//! ← {"class":"LR(0)","fingerprint":"…","ok":true,"op":"compile",…}
//! → {"op":"parse","grammar":"…","batch":["NUM + NUM","NUM +"],"deadline_ms":500}
//! ← {"cached":false,"docs":[{"accepted":true,…},{"accepted":false,…}],"fingerprint":"…","ok":true,"op":"parse"}
//! → {"op":"parse","fingerprint":"8f3a…","batch":["NUM"]}
//! ← {"cached":true,"docs":[{"accepted":true,…}],"fingerprint":"8f3a…","ok":true,"op":"parse"}
//! ```
//!
//! A parse request names its artifact by `"grammar"` text or by the
//! `"fingerprint"` a prior compile reported; `"batch"` carries the
//! documents (a lone `"input"` string is accepted as a batch of one).

use std::time::Duration;

use serde_json::{object, Value};

use crate::artifact::GrammarFormat;
use crate::error::ServiceError;
use crate::fingerprint::{format_fingerprint, parse_fingerprint};
use crate::service::{
    AdmissionRejects, DocVerdict, HealthReport, ParseTarget, Request, Response, StatsSnapshot,
    TraceDump, TraceFilter,
};

/// Encodes a request (plus optional per-request deadline) as one JSON
/// value.
pub fn request_to_value(request: &Request, deadline: Option<Duration>) -> Value {
    let mut pairs: Vec<(&'static str, Value)> = vec![("op", request.op().into())];
    let format_pair = |format: &GrammarFormat| -> Option<(&'static str, Value)> {
        matches!(format, GrammarFormat::Yacc).then_some(("yacc", Value::Bool(true)))
    };
    match request {
        Request::Compile { grammar, format } | Request::Classify { grammar, format } => {
            pairs.push(("grammar", grammar.as_str().into()));
            pairs.extend(format_pair(format));
        }
        Request::Table {
            grammar,
            format,
            compressed,
        } => {
            pairs.push(("grammar", grammar.as_str().into()));
            pairs.extend(format_pair(format));
            if *compressed {
                pairs.push(("compressed", Value::Bool(true)));
            }
        }
        Request::Parse {
            target,
            documents,
            recover,
            sync,
        } => {
            match target {
                ParseTarget::Text { grammar, format } => {
                    pairs.push(("grammar", grammar.as_str().into()));
                    pairs.extend(format_pair(format));
                }
                ParseTarget::Fingerprint(fp) => {
                    pairs.push(("fingerprint", format_fingerprint(*fp).into()));
                }
            }
            pairs.push((
                "batch",
                Value::Arr(documents.iter().map(|d| d.as_str().into()).collect()),
            ));
            if *recover {
                pairs.push(("recover", Value::Bool(true)));
                if !sync.is_empty() {
                    pairs.push((
                        "sync",
                        Value::Arr(sync.iter().map(|s| s.as_str().into()).collect()),
                    ));
                }
            }
        }
        Request::Trace(filter) => {
            if let Some(op) = &filter.op {
                pairs.push(("op_filter", op.as_str().into()));
            }
            if filter.errors_only {
                pairs.push(("errors_only", Value::Bool(true)));
            }
            if let Some(slow) = filter.slow_us {
                pairs.push(("slow_us", slow.into()));
            }
            if let Some(limit) = filter.limit {
                pairs.push(("limit", limit.into()));
            }
        }
        Request::Stats | Request::Metrics | Request::Health | Request::Shutdown => {}
    }
    if let Some(d) = deadline {
        pairs.push(("deadline_ms", (d.as_millis() as u64).into()));
    }
    object(pairs)
}

/// Decodes a request line.
pub fn request_from_value(value: &Value) -> Result<(Request, Option<Duration>), ServiceError> {
    let bad = |m: &str| ServiceError::BadRequest(m.to_string());
    let obj = value
        .as_obj()
        .ok_or_else(|| bad("request must be an object"))?;
    let op = value
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| bad("missing string field \"op\""))?;
    let grammar = || -> Result<String, ServiceError> {
        Ok(value
            .get("grammar")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing string field \"grammar\""))?
            .to_string())
    };
    let format = if value.get("yacc").and_then(Value::as_bool).unwrap_or(false) {
        GrammarFormat::Yacc
    } else {
        GrammarFormat::Native
    };
    let request = match op {
        "compile" => Request::Compile {
            grammar: grammar()?,
            format,
        },
        "classify" => Request::Classify {
            grammar: grammar()?,
            format,
        },
        "table" => Request::Table {
            grammar: grammar()?,
            format,
            compressed: value
                .get("compressed")
                .and_then(Value::as_bool)
                .unwrap_or(false),
        },
        "parse" => {
            let target = if value.get("grammar").is_some() {
                ParseTarget::Text {
                    grammar: grammar()?,
                    format,
                }
            } else if let Some(v) = value.get("fingerprint") {
                let hex = v
                    .as_str()
                    .ok_or_else(|| bad("\"fingerprint\" must be a hex string"))?;
                ParseTarget::Fingerprint(
                    parse_fingerprint(hex)
                        .ok_or_else(|| bad("\"fingerprint\" must be 16 lowercase hex digits"))?,
                )
            } else {
                return Err(bad("missing field \"grammar\" or \"fingerprint\""));
            };
            let documents = if let Some(batch) = value.get("batch") {
                let items = batch
                    .as_arr()
                    .ok_or_else(|| bad("\"batch\" must be an array of strings"))?;
                items
                    .iter()
                    .map(|d| {
                        d.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| bad("\"batch\" must be an array of strings"))
                    })
                    .collect::<Result<Vec<_>, _>>()?
            } else if let Some(input) = value.get("input").and_then(Value::as_str) {
                // Back-compat: a single document travels as "input".
                vec![input.to_string()]
            } else {
                return Err(bad("missing field \"batch\" or \"input\""));
            };
            let recover = value
                .get("recover")
                .and_then(Value::as_bool)
                .unwrap_or(false);
            let sync = match value.get("sync") {
                None => Vec::new(),
                Some(v) => v
                    .as_arr()
                    .ok_or_else(|| bad("\"sync\" must be an array of terminal names"))?
                    .iter()
                    .map(|s| {
                        s.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| bad("\"sync\" must be an array of terminal names"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            };
            Request::Parse {
                target,
                documents,
                recover,
                sync,
            }
        }
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "trace" => {
            let op_filter = match value.get("op_filter") {
                None => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| bad("\"op_filter\" must be an op name string"))?
                        .to_string(),
                ),
            };
            let errors_only = match value.get("errors_only") {
                None => false,
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| bad("\"errors_only\" must be a boolean"))?,
            };
            let slow_us = match value.get("slow_us") {
                None => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or_else(|| bad("\"slow_us\" must be a non-negative integer"))?,
                ),
            };
            let limit = match value.get("limit") {
                None => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or_else(|| bad("\"limit\" must be a non-negative integer"))?
                        as usize,
                ),
            };
            Request::Trace(TraceFilter {
                op: op_filter,
                errors_only,
                slow_us,
                limit,
            })
        }
        "health" => Request::Health,
        "shutdown" => Request::Shutdown,
        other => {
            return Err(ServiceError::BadRequest(format!(
                "unknown op {other:?} (available: compile, classify, table, parse, stats, \
                 metrics, trace, health, shutdown)"
            )))
        }
    };
    let deadline = match obj.get("deadline_ms") {
        None => None,
        Some(v) => {
            Some(Duration::from_millis(v.as_u64().ok_or_else(|| {
                bad("\"deadline_ms\" must be a non-negative integer")
            })?))
        }
    };
    Ok((request, deadline))
}

/// Encodes a response as one JSON value.
pub fn response_to_value(response: &Response) -> Value {
    match response {
        Response::Compile(c) => object([
            ("ok", Value::Bool(true)),
            ("op", "compile".into()),
            ("fingerprint", c.fingerprint.as_str().into()),
            ("cached", Value::Bool(c.cached)),
            ("states", c.states.into()),
            ("productions", c.productions.into()),
            ("terminals", c.terminals.into()),
            ("conflicts", c.conflicts.into()),
            ("class", c.class.as_str().into()),
            ("bytes", c.bytes.into()),
            (
                "relations",
                object([
                    ("nt_transitions", c.relations.nt_transitions.into()),
                    ("reads_edges", c.relations.reads_edges.into()),
                    ("includes_edges", c.relations.includes_edges.into()),
                    ("lookback_edges", c.relations.lookback_edges.into()),
                ]),
            ),
            (
                "reads",
                object([
                    ("sccs", c.reads.scc_count.into()),
                    ("nontrivial_sccs", c.reads.nontrivial_sccs.into()),
                    ("max_scc", c.reads.max_scc_size.into()),
                    ("cyclic_nodes", c.reads.cyclic_nodes.into()),
                ]),
            ),
            (
                "includes",
                object([
                    ("sccs", c.includes.scc_count.into()),
                    ("nontrivial_sccs", c.includes.nontrivial_sccs.into()),
                    ("max_scc", c.includes.max_scc_size.into()),
                    ("cyclic_nodes", c.includes.cyclic_nodes.into()),
                ]),
            ),
        ]),
        Response::Classify(c) => object([
            ("ok", Value::Bool(true)),
            ("op", "classify".into()),
            ("class", c.class.as_str().into()),
            ("lr0_conflicts", c.lr0_conflicts.into()),
            ("slr_conflicts", c.slr_conflicts.into()),
            ("nqlalr_conflicts", c.nqlalr_conflicts.into()),
            ("lalr_conflicts", c.lalr_conflicts.into()),
            ("lr1_conflicts", c.lr1_conflicts.into()),
            ("not_lr_k", Value::Bool(c.not_lr_k)),
        ]),
        Response::Table(t) => {
            let mut pairs = vec![
                ("ok", Value::Bool(true)),
                ("op", "table".into()),
                ("text", t.text.as_str().into()),
                ("resolutions", t.resolutions.into()),
                ("action_entries", t.action_entries.into()),
            ];
            if let Some(n) = t.compressed_entries {
                pairs.push(("compressed_entries", n.into()));
            }
            object(pairs)
        }
        Response::Parse(p) => object([
            ("ok", Value::Bool(true)),
            ("op", "parse".into()),
            ("fingerprint", p.fingerprint.as_str().into()),
            ("cached", Value::Bool(p.cached)),
            (
                "docs",
                Value::Arr(p.docs.iter().map(verdict_to_value).collect()),
            ),
        ]),
        Response::Stats(s) => stats_to_value(s),
        Response::Metrics(text) => object([
            ("ok", Value::Bool(true)),
            ("op", "metrics".into()),
            ("text", text.as_str().into()),
        ]),
        Response::Trace(dump) => trace_to_value(dump),
        Response::Health(h) => health_to_value(h),
        Response::Shutdown => object([("ok", Value::Bool(true)), ("op", "shutdown".into())]),
        Response::Error(e) => object([
            ("ok", Value::Bool(false)),
            ("op", "error".into()),
            (
                "error",
                object([("kind", e.kind().into()), ("message", e.to_string().into())]),
            ),
        ]),
    }
}

/// Encodes one per-document verdict.
fn verdict_to_value(v: &DocVerdict) -> Value {
    let mut pairs = vec![
        ("accepted", Value::Bool(v.accepted)),
        ("leaves", v.leaves.into()),
        ("nodes", v.nodes.into()),
    ];
    if let Some(tree) = &v.tree {
        pairs.push(("tree", tree.as_str().into()));
    }
    if let Some(e) = &v.error {
        let mut err_pairs = vec![
            ("message", e.message.as_str().into()),
            ("offset", e.offset.into()),
            (
                "expected",
                Value::Arr(e.expected.iter().map(|t| t.as_str().into()).collect()),
            ),
        ];
        if let Some(found) = &e.found {
            err_pairs.push(("found", found.as_str().into()));
        }
        pairs.push(("error", object(err_pairs)));
    }
    if v.error_count > 0 {
        pairs.push(("errors", v.error_count.into()));
    }
    object(pairs)
}

/// Encodes a flight-recorder dump: recorder configuration plus one
/// object per trace, stages keyed by [`lalr_obs::STAGE_NAMES`].
fn trace_to_value(dump: &TraceDump) -> Value {
    let traces = dump
        .traces
        .iter()
        .map(|t| {
            let stages = Value::Obj(
                lalr_obs::STAGE_NAMES
                    .iter()
                    .zip(&t.stages_us)
                    .map(|(name, &us)| (name.to_string(), us.into()))
                    .collect(),
            );
            object([
                ("id", t.id.into()),
                (
                    "op",
                    crate::service::OPS
                        .get(t.op as usize)
                        .copied()
                        .unwrap_or("unknown")
                        .into(),
                ),
                ("shard", u64::from(t.shard).into()),
                ("error", Value::Bool(t.error)),
                ("total_us", t.total_us.into()),
                ("stage_sum_us", t.stage_sum_us().into()),
                ("stages_us", stages),
            ])
        })
        .collect();
    object([
        ("ok", Value::Bool(true)),
        ("op", "trace".into()),
        ("enabled", Value::Bool(dump.enabled)),
        ("capacity", dump.capacity.into()),
        ("sample_every", dump.sample_every.into()),
        ("recorded", dump.recorded.into()),
        ("traces", Value::Arr(traces)),
    ])
}

/// Encodes the per-reason admission-rejection counters.
fn rejects_to_value(r: &AdmissionRejects) -> Value {
    object([
        ("conn_cap", r.conn_cap.into()),
        ("peer_quota", r.peer_quota.into()),
        ("rate_limit", r.rate_limit.into()),
        ("slow_client", r.slow_client.into()),
        ("failpoint", r.failpoint.into()),
        ("total", r.total().into()),
    ])
}

/// Encodes the `health` op's answer.
fn health_to_value(h: &HealthReport) -> Value {
    object([
        ("ok", Value::Bool(true)),
        ("op", "health".into()),
        ("state", h.state.as_str().into()),
        ("queue_depth", h.queue_depth.into()),
        ("queue_limit", h.queue_limit.into()),
        ("shed", h.shed.into()),
        ("degraded_transitions", h.degraded_transitions.into()),
        ("shard_restarts", h.shard_restarts.into()),
        (
            "max_connections_per_peer",
            h.max_connections_per_peer.into(),
        ),
        ("rate_limit_per_sec", h.rate_limit_per_sec.into()),
        ("admission_rejects", rejects_to_value(&h.admission_rejects)),
    ])
}

fn stats_to_value(s: &StatsSnapshot) -> Value {
    let op_counts = |counts: &[u64; 9]| {
        Value::Obj(
            crate::service::OPS
                .iter()
                .zip(counts)
                .map(|(name, &n)| (name.to_string(), n.into()))
                .collect(),
        )
    };
    let latency = Value::Arr(s.latency_buckets.iter().map(|&n| n.into()).collect());
    let phases = Value::Obj(
        crate::service::PHASE_NAMES
            .iter()
            .zip(s.phase_calls.iter().zip(&s.phase_ns))
            .map(|(name, (&calls, &ns))| {
                (
                    name.to_string(),
                    object([("calls", calls.into()), ("total_us", (ns / 1_000).into())]),
                )
            })
            .collect(),
    );
    let mut pairs = vec![
        ("ok", Value::Bool(true)),
        ("op", "stats".into()),
        ("requests", s.requests.into()),
        ("errors", s.errors.into()),
        ("deadline_exceeded", s.deadline_exceeded.into()),
        ("by_op", op_counts(&s.by_op)),
        ("errors_by_op", op_counts(&s.errors_by_op)),
        ("latency_buckets", latency),
        ("phases", phases),
        (
            "parse_lane",
            object([
                ("batches", s.parse.batches.into()),
                ("documents", s.parse.documents.into()),
                ("accepted", s.parse.accepted.into()),
                ("rejected", s.parse.rejected.into()),
                ("resolutions", s.parse.resolutions.into()),
            ]),
        ),
        ("shed", s.shed.into()),
        ("queue_depth", s.queue_depth.into()),
        ("queue_limit", s.queue_limit.into()),
        ("workers", s.workers.into()),
        ("uptime_ms", s.uptime_ms.into()),
        (
            "health",
            object([
                ("state", s.health.state.as_str().into()),
                ("degraded_transitions", s.health.degraded_transitions.into()),
                ("shard_restarts", s.health.shard_restarts.into()),
                (
                    "max_connections_per_peer",
                    s.health.max_connections_per_peer.into(),
                ),
                ("rate_limit_per_sec", s.health.rate_limit_per_sec.into()),
                ("admission_rejects", rejects_to_value(&s.health.admission)),
            ]),
        ),
    ];
    if !s.shards.is_empty() {
        pairs.push((
            "shards",
            Value::Arr(
                s.shards
                    .iter()
                    .map(|sh| {
                        object([
                            ("shard", sh.shard.into()),
                            ("epoll_waits", sh.epoll_waits.into()),
                            ("epoll_wait_us", sh.epoll_wait_us.into()),
                            ("events", sh.events.into()),
                            ("accepts", sh.accepts.into()),
                            ("inbox_items", sh.inbox_items.into()),
                            ("timer_fires", sh.timer_fires.into()),
                            ("connections", sh.connections.into()),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    if s.tracing.enabled {
        let stages = Value::Obj(
            lalr_obs::STAGE_NAMES
                .iter()
                .zip(&s.tracing.stage_ns)
                .map(|(name, &ns)| (name.to_string(), (ns / 1_000).into()))
                .collect(),
        );
        pairs.push((
            "tracing",
            object([
                ("enabled", Value::Bool(true)),
                ("capacity", s.tracing.capacity.into()),
                ("sample_every", s.tracing.sample_every.into()),
                ("sampled", s.tracing.sampled.into()),
                ("stage_us", stages),
            ]),
        ));
    }
    if !s.faults.is_empty() {
        pairs.push((
            "faults",
            Value::Arr(
                s.faults
                    .iter()
                    .map(|f| {
                        object([
                            ("point", f.point.as_str().into()),
                            ("fault", f.fault.as_str().into()),
                            ("hits", f.hits.into()),
                            ("injected", f.injected.into()),
                            ("expected", f.expected.into()),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    if let Some(c) = &s.cache {
        pairs.push((
            "cache",
            object([
                ("hits", c.hits.into()),
                ("misses", c.misses.into()),
                ("coalesced", c.coalesced.into()),
                ("evictions", c.evictions.into()),
                ("compiles", c.compiles.into()),
                ("store_hits", c.store_hits.into()),
                ("store_misses", c.store_misses.into()),
                ("store_writes", c.store_writes.into()),
                ("store_corrupt", c.store_corrupt.into()),
                ("entries", c.entries.into()),
                ("bytes", c.bytes.into()),
                ("hit_rate", c.hit_rate().into()),
            ]),
        ));
    }
    object(pairs)
}

/// Encodes a response as one protocol line (no trailing newline).
pub fn response_to_line(response: &Response) -> String {
    response_to_value(response).to_string()
}

/// Encodes a request as one protocol line (no trailing newline).
pub fn request_to_line(request: &Request, deadline: Option<Duration>) -> String {
    request_to_value(request, deadline).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(request: Request, deadline: Option<Duration>) {
        let line = request_to_line(&request, deadline);
        let value = serde_json::from_str(&line).unwrap();
        let (back, d) = request_from_value(&value).unwrap();
        assert_eq!(back, request, "{line}");
        assert_eq!(d, deadline, "{line}");
    }

    #[test]
    fn requests_round_trip() {
        round_trip(
            Request::Compile {
                grammar: "e : \"x\" ;\n// comment with \"quotes\"".to_string(),
                format: GrammarFormat::Native,
            },
            None,
        );
        round_trip(
            Request::Classify {
                grammar: "%token A\n%%\ns : A ;".to_string(),
                format: GrammarFormat::Yacc,
            },
            Some(Duration::from_millis(250)),
        );
        round_trip(
            Request::Table {
                grammar: "s : \"a\" ;".to_string(),
                format: GrammarFormat::Native,
                compressed: true,
            },
            None,
        );
        round_trip(
            Request::Parse {
                target: ParseTarget::Text {
                    grammar: "s : \"a\" ;".to_string(),
                    format: GrammarFormat::Native,
                },
                documents: vec!["a".to_string(), "a a".to_string(), String::new()],
                recover: false,
                sync: Vec::new(),
            },
            None,
        );
        round_trip(
            Request::Parse {
                target: ParseTarget::Fingerprint(0xdead_beef_0123_4567),
                documents: vec!["a".to_string()],
                recover: true,
                sync: vec![";".to_string()],
            },
            Some(Duration::from_millis(75)),
        );
        round_trip(
            Request::Parse {
                target: ParseTarget::Text {
                    grammar: "%token A\n%%\ns : A ;".to_string(),
                    format: GrammarFormat::Yacc,
                },
                documents: vec!["A \"quoted\" doc \\ with escapes".to_string()],
                recover: true,
                sync: Vec::new(),
            },
            None,
        );
        round_trip(Request::Stats, None);
        round_trip(Request::Metrics, None);
        round_trip(Request::Trace(TraceFilter::default()), None);
        round_trip(
            Request::Trace(TraceFilter {
                op: Some("compile".to_string()),
                errors_only: true,
                slow_us: Some(5_000),
                limit: Some(10),
            }),
            Some(Duration::from_millis(100)),
        );
        round_trip(Request::Health, None);
        round_trip(Request::Shutdown, None);
    }

    #[test]
    fn health_responses_render_state_quotas_and_rejects() {
        let r = Response::Health(HealthReport {
            state: "degraded".to_string(),
            queue_depth: 3,
            queue_limit: 4,
            shed: 9,
            degraded_transitions: 1,
            shard_restarts: 2,
            max_connections_per_peer: 8,
            rate_limit_per_sec: 100,
            admission_rejects: AdmissionRejects {
                conn_cap: 1,
                peer_quota: 2,
                rate_limit: 3,
                slow_client: 4,
                failpoint: 5,
            },
        });
        let line = response_to_line(&r);
        let v = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("op").and_then(Value::as_str), Some("health"));
        assert_eq!(v.get("state").and_then(Value::as_str), Some("degraded"));
        assert_eq!(v.get("shard_restarts").and_then(Value::as_u64), Some(2));
        assert_eq!(
            v.get("max_connections_per_peer").and_then(Value::as_u64),
            Some(8)
        );
        let rejects = v.get("admission_rejects").unwrap();
        assert_eq!(rejects.get("peer_quota").and_then(Value::as_u64), Some(2));
        assert_eq!(rejects.get("total").and_then(Value::as_u64), Some(15));
    }

    #[test]
    fn malformed_trace_filters_are_structured_errors() {
        for line in [
            r#"{"op":"trace","op_filter":7}"#,
            r#"{"op":"trace","errors_only":"yes"}"#,
            r#"{"op":"trace","slow_us":"fast"}"#,
            r#"{"op":"trace","slow_us":-5}"#,
            r#"{"op":"trace","limit":[1]}"#,
        ] {
            let v = serde_json::from_str(line).unwrap();
            let err = request_from_value(&v).unwrap_err();
            assert!(
                matches!(err, ServiceError::BadRequest(_)),
                "{line} → {err:?}"
            );
        }
    }

    #[test]
    fn trace_responses_render_stage_breakdowns() {
        use lalr_obs::RequestTrace;
        let r = Response::Trace(Box::new(TraceDump {
            enabled: true,
            capacity: 256,
            sample_every: 1,
            recorded: 3,
            traces: vec![RequestTrace {
                id: 3,
                op: 0,
                shard: 1,
                error: false,
                total_us: 1_200,
                stages_us: [100, 50, 1_000, 0, 40],
            }],
        }));
        let line = response_to_line(&r);
        let v = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("enabled").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("recorded").and_then(Value::as_u64), Some(3));
        let traces = v.get("traces").and_then(Value::as_arr).unwrap();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.get("op").and_then(Value::as_str), Some("compile"));
        assert_eq!(t.get("total_us").and_then(Value::as_u64), Some(1_200));
        assert_eq!(t.get("stage_sum_us").and_then(Value::as_u64), Some(1_190));
        let stages = t.get("stages_us").unwrap();
        assert_eq!(stages.get("compile").and_then(Value::as_u64), Some(1_000));
        assert_eq!(stages.get("write").and_then(Value::as_u64), Some(40));
    }

    #[test]
    fn unknown_op_lists_available_ops() {
        let v = serde_json::from_str(r#"{"op":"frobnicate"}"#).unwrap();
        let err = request_from_value(&v).unwrap_err();
        assert!(err.to_string().contains("available: compile"), "{err}");
    }

    #[test]
    fn missing_fields_are_structured_errors() {
        for line in [
            r#"{"grammar":"x"}"#,
            r#"{"op":"compile"}"#,
            r#"{"op":"parse","grammar":"s : \"a\" ;"}"#,
            r#"{"op":"parse","batch":["a"]}"#,
            r#"{"op":"parse","fingerprint":"xyz","batch":["a"]}"#,
            r#"{"op":"parse","fingerprint":42,"batch":["a"]}"#,
            r#"{"op":"parse","grammar":"s : \"a\" ;","batch":"a"}"#,
            r#"{"op":"parse","grammar":"s : \"a\" ;","batch":[1]}"#,
            r#"{"op":"parse","grammar":"s : \"a\" ;","batch":["a"],"sync":[1]}"#,
            r#"{"op":"compile","grammar":"x","deadline_ms":-1}"#,
            r#"[1,2]"#,
        ] {
            let v = serde_json::from_str(line).unwrap();
            assert!(request_from_value(&v).is_err(), "{line}");
        }
    }

    #[test]
    fn lone_input_decodes_as_a_batch_of_one() {
        let v = serde_json::from_str(r#"{"op":"parse","grammar":"s : \"a\" ;","input":"a a"}"#)
            .unwrap();
        let (req, _) = request_from_value(&v).unwrap();
        match req {
            Request::Parse {
                documents, recover, ..
            } => {
                assert_eq!(documents, vec!["a a".to_string()]);
                assert!(!recover);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_batch_decodes_and_is_rejected_by_the_service_not_the_codec() {
        // The codec passes the empty batch through; the service layer
        // answers with a structured bad_request (see the hostile tests).
        let v =
            serde_json::from_str(r#"{"op":"parse","grammar":"s : \"a\" ;","batch":[]}"#).unwrap();
        let (req, _) = request_from_value(&v).unwrap();
        match req {
            Request::Parse { documents, .. } => assert!(documents.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_responses_render_per_document_verdicts() {
        use crate::service::{DocError, ParseBatchSummary};
        let r = Response::Parse(ParseBatchSummary {
            fingerprint: "00000000000000ff".to_string(),
            cached: true,
            docs: vec![
                DocVerdict {
                    accepted: true,
                    leaves: 3,
                    nodes: 2,
                    tree: Some("(e x)".to_string()),
                    error: None,
                    error_count: 0,
                },
                DocVerdict {
                    accepted: false,
                    leaves: 0,
                    nodes: 0,
                    tree: None,
                    error: Some(DocError {
                        message: "unexpected end of input at offset 2".to_string(),
                        offset: 2,
                        found: None,
                        expected: vec!["NUM".to_string()],
                    }),
                    error_count: 1,
                },
            ],
        });
        let line = response_to_line(&r);
        let v = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("cached").and_then(Value::as_bool), Some(true));
        let docs = v.get("docs").and_then(Value::as_arr).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].get("accepted").and_then(Value::as_bool), Some(true));
        assert_eq!(docs[0].get("leaves").and_then(Value::as_u64), Some(3));
        assert_eq!(docs[0].get("tree").and_then(Value::as_str), Some("(e x)"));
        assert!(docs[0].get("error").is_none());
        let err = docs[1].get("error").unwrap();
        assert_eq!(err.get("offset").and_then(Value::as_u64), Some(2));
        assert!(err.get("found").is_none(), "EOF error has no found token");
        assert_eq!(
            err.get("expected")
                .and_then(Value::as_arr)
                .map(<[Value]>::len),
            Some(1)
        );
    }

    #[test]
    fn error_responses_carry_kind_and_message() {
        let r = Response::Error(ServiceError::TooLarge {
            size: 100,
            limit: 10,
        });
        let line = response_to_line(&r);
        let v = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        let e = v.get("error").unwrap();
        assert_eq!(e.get("kind").and_then(Value::as_str), Some("too_large"));
    }
}
