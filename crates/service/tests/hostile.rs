//! Hostile-input hardening: malformed bytes, adversarial JSON, and
//! absurd field values must each get a structured error (or a dropped
//! connection) while the daemon keeps serving well-formed requests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use lalr_service::client::{self, ClientReply};
use lalr_service::{Daemon, DaemonConfig, Fault, FaultPlan, GrammarFormat, Request, Trigger};

use serde_json::Value;

const GRAMMAR: &str = "e : e \"+\" t | t ; t : \"x\" ;";

fn start_daemon() -> Daemon {
    let config = DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        ..DaemonConfig::default()
    };
    Daemon::start(config).expect("bind loopback")
}

fn compile_request() -> Request {
    Request::Compile {
        grammar: GRAMMAR.to_string(),
        format: GrammarFormat::Native,
    }
}

fn call(daemon: &Daemon, request: &Request) -> ClientReply {
    client::call(
        &daemon.addr().to_string(),
        request,
        None,
        Duration::from_secs(30),
    )
    .expect("daemon reachable")
}

/// Opens a raw connection with a short read timeout for line exchanges.
fn raw_conn(daemon: &Daemon) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(daemon.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let writer = stream.try_clone().unwrap();
    (writer, BufReader::new(stream))
}

fn error_kind(line: &str) -> String {
    let v: Value = serde_json::from_str(line.trim_end())
        .unwrap_or_else(|e| panic!("unparseable reply {line:?}: {e}"));
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{line}");
    v.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("no error.kind in {line:?}"))
        .to_string()
}

#[test]
fn invalid_utf8_drops_the_connection_and_the_daemon_survives() {
    let daemon = start_daemon();
    let (mut writer, mut reader) = raw_conn(&daemon);

    // A line that is not UTF-8: 0xFF can never appear in a valid
    // sequence. `read_line` on the server errors and the connection is
    // dropped without a reply — the client observes EOF.
    writer
        .write_all(&[0xFF, 0xFE, 0x80, b'{', b'}', b'\n'])
        .unwrap();
    writer.flush().unwrap();
    let mut buf = Vec::new();
    let n = reader.read_to_end(&mut buf).unwrap();
    assert_eq!(n, 0, "expected EOF, got {buf:?}");

    // The daemon itself is unharmed.
    let reply = call(&daemon, &compile_request());
    assert!(reply.is_ok(), "{}", reply.raw);
    daemon.stop();
    let summary = daemon.join();
    assert!(summary.connections >= 2, "{summary:?}");
}

#[test]
fn deeply_nested_json_hits_the_parser_depth_guard() {
    let daemon = start_daemon();
    let (mut writer, mut reader) = raw_conn(&daemon);

    // 200 levels of nesting — past the vendored parser's MAX_DEPTH of
    // 128 — must be refused by the recursion guard, not overflow the
    // connection thread's stack.
    let deep = format!("{}{}", "[".repeat(200), "]".repeat(200));
    writeln!(writer, "{deep}").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(error_kind(&line), "bad_request", "{line}");

    // An *accepted* depth that is still not an object gets the shape
    // error, and the connection remains usable for real work.
    line.clear();
    writeln!(writer, "{}{}", "[".repeat(50), "]".repeat(50)).unwrap();
    reader.read_line(&mut line).unwrap();
    assert_eq!(error_kind(&line), "bad_request", "{line}");

    line.clear();
    writeln!(
        writer,
        "{}",
        lalr_service::protocol::request_to_line(&compile_request(), None)
    )
    .unwrap();
    reader.read_line(&mut line).unwrap();
    let v: Value = serde_json::from_str(line.trim_end()).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{line}");

    drop(writer);
    drop(reader);
    daemon.stop();
    daemon.join();
}

#[test]
fn absurd_numeric_and_mistyped_fields_each_get_a_structured_error() {
    let daemon = start_daemon();
    let (mut writer, mut reader) = raw_conn(&daemon);
    let mut line = String::new();

    // Every hostile line is answered on the same connection; none of
    // them may wedge or crash the thread serving it.
    let cases: &[&str] = &[
        // deadline_ms beyond exact-integer range (numbers are f64).
        r#"{"op":"compile","grammar":"e : \"x\" ;","deadline_ms":99999999999999999999999}"#,
        // Negative and fractional deadlines.
        r#"{"op":"compile","grammar":"e : \"x\" ;","deadline_ms":-5}"#,
        r#"{"op":"compile","grammar":"e : \"x\" ;","deadline_ms":1.5}"#,
        // Exponent overflow inside the number literal itself.
        r#"{"op":"compile","grammar":"e : \"x\" ;","deadline_ms":1e999}"#,
        // op of the wrong type, null, and a non-object request.
        r#"{"op":42}"#,
        r#"{"op":null}"#,
        "null",
        "{}",
        r#"{"op":"compile","grammar":12345}"#,
    ];
    for case in cases {
        line.clear();
        writeln!(writer, "{case}").unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(
            error_kind(&line),
            "bad_request",
            "for request {case}: {line}"
        );
    }

    // u64::MAX milliseconds is far-future but representable: the request
    // must simply succeed rather than trip an overflow.
    line.clear();
    writeln!(
        writer,
        r#"{{"op":"compile","grammar":"e : \"x\" ;","deadline_ms":9007199254740992}}"#
    )
    .unwrap();
    reader.read_line(&mut line).unwrap();
    let v: Value = serde_json::from_str(line.trim_end()).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{line}");

    drop(writer);
    drop(reader);
    daemon.stop();
    daemon.join();
}

#[test]
fn empty_parse_batch_is_a_structured_bad_request() {
    let daemon = start_daemon();
    let (mut writer, mut reader) = raw_conn(&daemon);
    let mut line = String::new();

    // The codec accepts an empty "batch" array; the *service* refuses
    // it. Either way the caller gets a structured error, not a drop.
    writeln!(
        writer,
        r#"{{"op":"parse","grammar":"e : \"x\" ;","batch":[]}}"#
    )
    .unwrap();
    reader.read_line(&mut line).unwrap();
    assert_eq!(error_kind(&line), "bad_request", "{line}");
    assert!(line.contains("empty batch"), "{line}");

    // Mistyped batches are codec-level bad requests on the same
    // connection: not an array, and an array of non-strings.
    for case in [
        r#"{"op":"parse","grammar":"e : \"x\" ;","batch":"x"}"#,
        r#"{"op":"parse","grammar":"e : \"x\" ;","batch":[42]}"#,
        r#"{"op":"parse","grammar":"e : \"x\" ;"}"#,
        r#"{"op":"parse","batch":["x"],"fingerprint":"nope"}"#,
    ] {
        line.clear();
        writeln!(writer, "{case}").unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(error_kind(&line), "bad_request", "for {case}: {line}");
    }

    // The connection still serves a well-formed batch afterwards.
    line.clear();
    writeln!(
        writer,
        r#"{{"op":"parse","grammar":"e : e \"+\" t | t ; t : \"x\" ;","batch":["x + x"]}}"#
    )
    .unwrap();
    reader.read_line(&mut line).unwrap();
    let v: Value = serde_json::from_str(line.trim_end()).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{line}");

    drop(writer);
    drop(reader);
    daemon.stop();
    daemon.join();
}

#[test]
fn oversized_document_degrades_to_a_per_document_error() {
    // One absurd document must not fail the batch, wedge the
    // connection, or starve its well-formed neighbours.
    let daemon = start_daemon();
    let huge = "x ".repeat(300 << 10); // ~600 KiB > the 256 KiB default
    let request = Request::Parse {
        target: lalr_service::ParseTarget::Text {
            grammar: "e : e \"+\" t | t ; t : \"x\" ;".to_string(),
            format: GrammarFormat::Native,
        },
        documents: vec!["x + x".to_string(), huge, "x".to_string()],
        recover: false,
        sync: Vec::new(),
    };
    let reply = call(&daemon, &request);
    assert!(reply.is_ok(), "{}", reply.raw);
    let docs = reply
        .value
        .get("docs")
        .and_then(Value::as_arr)
        .expect("docs array")
        .to_vec();
    assert_eq!(docs.len(), 3);
    let accepted =
        |d: &Value| -> bool { d.get("accepted").and_then(Value::as_bool).unwrap_or(false) };
    assert!(accepted(&docs[0]), "{}", reply.raw);
    assert!(!accepted(&docs[1]), "oversized doc must be rejected");
    assert!(accepted(&docs[2]), "{}", reply.raw);
    let message = docs[1]
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Value::as_str)
        .expect("per-document error");
    assert!(message.contains("byte limit"), "{message}");

    // The daemon keeps serving after the hostile batch.
    let reply = call(&daemon, &compile_request());
    assert!(reply.is_ok(), "{}", reply.raw);
    daemon.stop();
    daemon.join();
}

#[test]
fn injected_read_garbage_is_a_bad_request_and_the_connection_survives() {
    // The daemon.read Garbage failpoint corrupts the *first* request
    // line as if the transport had scrambled it; the daemon answers
    // bad_request and the same connection then serves the clean retry.
    let faults = FaultPlan::new(11)
        .rule("daemon.read", Fault::Garbage, Trigger::OnHits(vec![1]))
        .build();
    let config = DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        faults: faults.clone(),
        ..DaemonConfig::default()
    };
    let daemon = Daemon::start(config).unwrap();
    let (mut writer, mut reader) = raw_conn(&daemon);
    let request_line = lalr_service::protocol::request_to_line(&compile_request(), None);

    let mut line = String::new();
    writeln!(writer, "{request_line}").unwrap();
    reader.read_line(&mut line).unwrap();
    assert_eq!(error_kind(&line), "bad_request", "{line}");

    line.clear();
    writeln!(writer, "{request_line}").unwrap();
    reader.read_line(&mut line).unwrap();
    let v: Value = serde_json::from_str(line.trim_end()).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{line}");

    assert_eq!(faults.injected_at("daemon.read"), 1);
    drop(writer);
    drop(reader);
    daemon.stop();
    daemon.join();
}
