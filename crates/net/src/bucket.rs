//! A token-bucket rate limiter for request admission.
//!
//! The bucket holds up to `burst` tokens and refills continuously at
//! `rate_per_sec` tokens per second; admitting a request takes one
//! token. The caller supplies the clock (`Instant` arguments), so the
//! bucket itself is a pure state machine — unit tests drive it with
//! synthetic time offsets and get exact, reproducible admission
//! sequences, and the daemon passes its event-loop tick time.
//!
//! The bucket is intentionally not thread-safe: the daemon wraps one in
//! a mutex shared across shards (admission checks are rare next to the
//! I/O they gate).

use std::time::Instant;

/// A continuously refilling token bucket. See the module docs.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: u64,
    burst: u64,
    /// Available tokens, scaled ×1e9 so refill is integer arithmetic.
    nano_tokens: u128,
    last: Instant,
}

const NANO: u128 = 1_000_000_000;

impl TokenBucket {
    /// A full bucket refilling at `rate_per_sec`, holding at most
    /// `burst` tokens (a burst of 0 is treated as 1: a bucket that can
    /// never hold a token would reject everything silently).
    pub fn new(rate_per_sec: u64, burst: u64, now: Instant) -> TokenBucket {
        let burst = burst.max(1);
        TokenBucket {
            rate_per_sec,
            burst,
            nano_tokens: u128::from(burst) * NANO,
            last: now,
        }
    }

    fn refill(&mut self, now: Instant) {
        let elapsed = now.saturating_duration_since(self.last).as_nanos();
        if elapsed == 0 {
            return;
        }
        self.last = now;
        let cap = u128::from(self.burst) * NANO;
        self.nano_tokens = (self.nano_tokens + elapsed * u128::from(self.rate_per_sec)).min(cap);
    }

    /// Takes one token if available. `false` means the request should be
    /// rejected (explicitly — never silently dropped).
    pub fn try_take(&mut self, now: Instant) -> bool {
        self.refill(now);
        if self.nano_tokens >= NANO {
            self.nano_tokens -= NANO;
            true
        } else {
            false
        }
    }

    /// Whole tokens currently available (after refilling to `now`).
    pub fn available(&mut self, now: Instant) -> u64 {
        self.refill(now);
        (self.nano_tokens / NANO) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_then_refill_at_the_configured_rate() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(10, 3, t0);
        // The initial burst admits exactly `burst` back-to-back requests.
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(!b.try_take(t0), "burst exhausted");
        // 100 ms at 10/s refills exactly one token.
        let t1 = t0 + Duration::from_millis(100);
        assert_eq!(b.available(t1), 1);
        assert!(b.try_take(t1));
        assert!(!b.try_take(t1));
        // Refill caps at the burst size no matter how long the idle gap.
        let t2 = t1 + Duration::from_secs(3600);
        assert_eq!(b.available(t2), 3);
    }

    #[test]
    fn zero_rate_never_refills_and_zero_burst_is_one() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(0, 0, t0);
        assert!(b.try_take(t0), "burst 0 is clamped to 1");
        assert!(!b.try_take(t0 + Duration::from_secs(100)));
    }

    #[test]
    fn time_going_backwards_is_tolerated() {
        let t0 = Instant::now() + Duration::from_secs(10);
        let mut b = TokenBucket::new(1, 1, t0);
        assert!(b.try_take(t0));
        // An earlier timestamp neither panics nor refills.
        assert!(!b.try_take(t0 - Duration::from_secs(5)));
    }
}
