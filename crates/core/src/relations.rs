//! The paper's four relations over nonterminal transitions.

use lalr_automata::{Lr0Automaton, NtTransId, ReductionId, ReductionIndex, StateId};
use lalr_bitset::BitMatrix;
use lalr_digraph::{tarjan_scc, Graph};
use lalr_grammar::analysis::NullableSet;
use lalr_grammar::{Grammar, ProdId, Symbol, Terminal};

/// Structural statistics of the relations (experiment **E1**/**E5**).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RelationStats {
    /// Nonterminal transitions (nodes of `reads`/`includes`).
    pub nt_transitions: usize,
    /// Edges of `reads`.
    pub reads_edges: usize,
    /// Edges of `includes`.
    pub includes_edges: usize,
    /// Lookback edges (reduction point → nonterminal transition).
    pub lookback_edges: usize,
    /// Nontrivial SCCs of `reads` (a nonempty value proves non-LR(k)).
    pub reads_nontrivial_sccs: usize,
    /// Nontrivial SCCs of `includes`.
    pub includes_nontrivial_sccs: usize,
    /// Size of the largest `includes` SCC.
    pub includes_max_scc: usize,
}

/// `DR`, `reads`, `includes` and `lookback` for one grammar + automaton.
///
/// Nodes of the two graphs are [`NtTransId`]s; `lookback` maps each
/// reduction point `(q, A→ω)` to the nonterminal transitions `(p, A)` with
/// `p --ω--> q`.
///
/// # Examples
///
/// ```
/// use lalr_automata::Lr0Automaton;
/// use lalr_core::Relations;
/// use lalr_grammar::parse_grammar;
///
/// let g = parse_grammar("s : a s | \"x\" ; a : \"y\" | ;")?;
/// let lr0 = Lr0Automaton::build(&g);
/// let rel = Relations::build(&g, &lr0);
/// let stats = rel.stats();
/// assert!(stats.reads_edges > 0, "nullable `a` induces reads edges");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Relations {
    dr: BitMatrix,
    reads: Graph,
    includes: Graph,
    /// Dense enumeration of reduction points — the row space of lookback.
    reductions: ReductionIndex,
    /// CSR lookback: the transitions reduction point `r` looks back to are
    /// `lookback_slab[lookback_offsets[r] .. lookback_offsets[r + 1]]`.
    lookback_offsets: Vec<u32>,
    lookback_slab: Vec<NtTransId>,
    nullable: NullableSet,
}

/// Scatters `(row, transition)` pairs into a CSR offsets+slab pair by a
/// stable counting sort, preserving each row's pair order — so the slab
/// layout is exactly what per-row `Vec` pushes in the same sequence would
/// produce.
fn lookback_csr(n_rows: usize, pairs: &[(u32, u32)]) -> (Vec<u32>, Vec<NtTransId>) {
    let mut offsets = vec![0u32; n_rows + 1];
    for &(r, _) in pairs {
        offsets[r as usize + 1] += 1;
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    let mut cursor: Vec<u32> = offsets[..n_rows].to_vec();
    let mut slab = vec![NtTransId::new(0); pairs.len()];
    for &(r, j) in pairs {
        let c = &mut cursor[r as usize];
        slab[*c as usize] = NtTransId::new(j as usize);
        *c += 1;
    }
    (offsets, slab)
}

impl Relations {
    /// Builds all four relations.
    pub fn build(grammar: &Grammar, lr0: &Lr0Automaton) -> Relations {
        let nullable = lalr_grammar::analysis::nullable(grammar);
        Relations::build_with(grammar, lr0, nullable)
    }

    /// Builds all four relations, sharding the per-transition work across
    /// the configured worker threads.
    ///
    /// The result is **identical** to [`Relations::build`] — not merely
    /// equivalent: workers own contiguous shards of the nonterminal
    /// transitions and fill private edge/lookback buffers, which are then
    /// merged in shard order. Since the shards partition the sequential
    /// iteration order, the merged adjacency lists and lookback vectors
    /// have the exact layout the sequential loop would produce (dedup
    /// included, because `add_edge_dedup` is applied at merge time in the
    /// same order it would have been applied incrementally).
    pub fn build_parallel(
        grammar: &Grammar,
        lr0: &Lr0Automaton,
        parallelism: &crate::Parallelism,
    ) -> Relations {
        Relations::build_parallel_recorded(grammar, lr0, parallelism, &lalr_obs::NULL)
    }

    /// [`Relations::build_parallel`] under an observer: the build runs
    /// inside a `relations.build` span and — when the recorder is
    /// enabled — reports the edge counts of all three relations. The
    /// counters come from the built adjacency structures directly (no
    /// SCC pass; see [`Relations::stats`] for the expensive structural
    /// statistics).
    pub fn build_parallel_recorded(
        grammar: &Grammar,
        lr0: &Lr0Automaton,
        parallelism: &crate::Parallelism,
        rec: &dyn lalr_obs::Recorder,
    ) -> Relations {
        let _span = lalr_obs::span(rec, "relations.build");
        let nullable = lalr_grammar::analysis::nullable(grammar);
        let relations = if !parallelism.is_parallel() {
            Relations::build_with(grammar, lr0, nullable)
        } else {
            Relations::build_with_parallel(grammar, lr0, nullable, parallelism)
        };
        if rec.is_enabled() {
            rec.add("relations.nodes", relations.reads.node_count() as u64);
            rec.add("relations.reads_edges", relations.reads.edge_count() as u64);
            rec.add(
                "relations.includes_edges",
                relations.includes.edge_count() as u64,
            );
            rec.add(
                "relations.lookback_edges",
                relations.lookback_slab.len() as u64,
            );
        }
        relations
    }

    /// Parallel analogue of [`Relations::build_with`]; see
    /// [`Relations::build_parallel`] for the determinism argument.
    pub fn build_with_parallel(
        grammar: &Grammar,
        lr0: &Lr0Automaton,
        nullable: NullableSet,
        parallelism: &crate::Parallelism,
    ) -> Relations {
        let nts = lr0.nt_transitions();
        let n = nts.len();
        let accept = lr0.accept_state(grammar);
        let shards = parallelism.shard_ranges(n);

        // DR: each worker owns a contiguous band of matrix rows (a
        // disjoint `&mut` borrow), so the scatter needs no merge at all.
        let mut dr = BitMatrix::new(n, grammar.terminal_count());
        let bands = dr.partition_rows_mut(parallelism.threads());
        std::thread::scope(|scope| {
            for mut band in bands {
                scope.spawn(move || {
                    let rows = band.first_row()..band.first_row() + band.len();
                    for (i, t) in nts.iter().enumerate().take(rows.end).skip(rows.start) {
                        for term in lr0.shift_symbols(t.to) {
                            band.set(i, term.index());
                        }
                        if t.to == accept {
                            band.set(i, Terminal::EOF.index());
                        }
                    }
                });
            }
        });

        // reads / includes / lookback: workers fill private buffers for
        // their shard of transitions; the merge below replays them in
        // shard order, i.e. in sequential iteration order.
        struct ShardOut {
            reads: Vec<(u32, u32)>,
            includes: Vec<(u32, u32)>,
            lookback: Vec<(u32, u32)>,
        }
        let reductions = ReductionIndex::from_lr0(lr0);
        let reductions_ref = &reductions;
        let nullable_ref = &nullable;
        let outputs: Vec<ShardOut> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .cloned()
                .map(|range| {
                    scope.spawn(move || {
                        let mut out = ShardOut {
                            reads: Vec::new(),
                            includes: Vec::new(),
                            lookback: Vec::new(),
                        };
                        for i in range {
                            let t = &nts[i];
                            for &(sym, _) in lr0.transitions(t.to) {
                                if let Symbol::NonTerminal(c) = sym {
                                    if nullable_ref.contains(c) {
                                        let j = lr0
                                            .nt_transition_id(t.to, c)
                                            .expect("transition enumerated");
                                        out.reads.push((i as u32, j.index() as u32));
                                    }
                                }
                            }
                            let j = i;
                            for &pid in grammar.productions_of(t.nt) {
                                let rhs = grammar.production(pid).rhs();
                                let mut state = t.from;
                                for (k, &sym) in rhs.iter().enumerate() {
                                    if let Symbol::NonTerminal(a) = sym {
                                        let gamma_nullable = rhs[k + 1..].iter().all(|&s| {
                                            matches!(s, Symbol::NonTerminal(n) if nullable_ref.contains(n))
                                        });
                                        if gamma_nullable {
                                            let src = lr0
                                                .nt_transition_id(state, a)
                                                .expect("closure guarantees the transition");
                                            out.includes.push((src.index() as u32, j as u32));
                                        }
                                    }
                                    state = lr0
                                        .transition(state, sym)
                                        .expect("the automaton contains every viable prefix");
                                }
                                let rid = reductions_ref
                                    .id(state, pid)
                                    .expect("a walked body ends in a reducing state");
                                out.lookback.push((rid.index() as u32, j as u32));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("relation shard worker panicked"))
                .collect()
        });

        let mut reads = Graph::new(n);
        let mut includes = Graph::new(n);
        let mut lookback_pairs: Vec<(u32, u32)> =
            Vec::with_capacity(outputs.iter().map(|o| o.lookback.len()).sum());
        for out in &outputs {
            for &(u, v) in &out.reads {
                reads.add_edge(u as usize, v as usize);
            }
            for &(u, v) in &out.includes {
                includes.add_edge_dedup(u as usize, v as usize);
            }
            // Shards partition the sequential iteration order, so the
            // concatenation feeds the stable CSR scatter the exact pair
            // sequence the sequential build produces.
            lookback_pairs.extend_from_slice(&out.lookback);
        }
        let (lookback_offsets, lookback_slab) = lookback_csr(reductions.len(), &lookback_pairs);

        Relations {
            dr,
            reads,
            includes,
            reductions,
            lookback_offsets,
            lookback_slab,
            nullable,
        }
    }

    /// Builds all four relations reusing a precomputed nullable set.
    pub fn build_with(grammar: &Grammar, lr0: &Lr0Automaton, nullable: NullableSet) -> Relations {
        let nts = lr0.nt_transitions();
        let n = nts.len();
        let accept = lr0.accept_state(grammar);

        // DR(p, A) = { t : p --A--> r --t--> }, plus $ for the transition
        // that reaches the accept state (reading `A` there means end of
        // input may follow — the paper's `S' → S ⊣` augmentation).
        let mut dr = BitMatrix::new(n, grammar.terminal_count());
        for (i, t) in nts.iter().enumerate() {
            for term in lr0.shift_symbols(t.to) {
                dr.set(i, term.index());
            }
            if t.to == accept {
                dr.set(i, Terminal::EOF.index());
            }
        }

        // reads: (p, A) reads (r, C) iff p --A--> r --C--> and C nullable.
        let mut reads = Graph::new(n);
        for (i, t) in nts.iter().enumerate() {
            for &(sym, _) in lr0.transitions(t.to) {
                if let Symbol::NonTerminal(c) = sym {
                    if nullable.contains(c) {
                        let j = lr0
                            .nt_transition_id(t.to, c)
                            .expect("transition enumerated");
                        reads.add_edge(i, j.index());
                    }
                }
            }
        }

        // includes and lookback, by walking every production body from every
        // source of a transition on its LHS:
        //   (p, A) includes (p', B)  iff  B → β A γ, γ ⇒* ε, p' --β--> p
        //   (q, A→ω) lookback (p, A) iff  p --ω--> q
        let reductions = ReductionIndex::from_lr0(lr0);
        let mut includes = Graph::new(n);
        let mut lookback_pairs: Vec<(u32, u32)> = Vec::new();
        for (j, t) in nts.iter().enumerate() {
            for &pid in grammar.productions_of(t.nt) {
                let rhs = grammar.production(pid).rhs();
                // Walk the body, collecting the state before each symbol.
                let mut state = t.from;
                for (k, &sym) in rhs.iter().enumerate() {
                    if let Symbol::NonTerminal(a) = sym {
                        // γ = rhs[k+1..] must be nullable for `includes`.
                        let gamma_nullable = rhs[k + 1..]
                            .iter()
                            .all(|&s| matches!(s, Symbol::NonTerminal(n) if nullable.contains(n)));
                        if gamma_nullable {
                            let i = lr0
                                .nt_transition_id(state, a)
                                .expect("closure guarantees the transition");
                            includes.add_edge_dedup(i.index(), j);
                        }
                    }
                    state = lr0
                        .transition(state, sym)
                        .expect("the automaton contains every viable prefix");
                }
                let rid = reductions
                    .id(state, pid)
                    .expect("a walked body ends in a reducing state");
                lookback_pairs.push((rid.index() as u32, j as u32));
            }
        }
        let (lookback_offsets, lookback_slab) = lookback_csr(reductions.len(), &lookback_pairs);

        Relations {
            dr,
            reads,
            includes,
            reductions,
            lookback_offsets,
            lookback_slab,
            nullable,
        }
    }

    /// The direct-read sets, one row per nonterminal transition.
    pub fn dr(&self) -> &BitMatrix {
        &self.dr
    }

    /// The `reads` relation.
    pub fn reads(&self) -> &Graph {
        &self.reads
    }

    /// The `includes` relation.
    pub fn includes(&self) -> &Graph {
        &self.includes
    }

    /// The dense enumeration of reduction points the lookback rows are
    /// indexed by.
    pub fn reduction_index(&self) -> &ReductionIndex {
        &self.reductions
    }

    /// The lookback row of a reduction point, by dense id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn lookback_row(&self, id: ReductionId) -> &[NtTransId] {
        let lo = self.lookback_offsets[id.index()] as usize;
        let hi = self.lookback_offsets[id.index() + 1] as usize;
        &self.lookback_slab[lo..hi]
    }

    /// The transitions `(p, A)` that reduction `(q, A→ω)` looks back to
    /// (empty for pairs that are not reduction points).
    pub fn lookback(&self, state: StateId, prod: ProdId) -> &[NtTransId] {
        self.reductions
            .id(state, prod)
            .map(|id| self.lookback_row(id))
            .unwrap_or(&[])
    }

    /// Iterates the non-empty lookback rows in dense-id order.
    pub fn lookback_entries(&self) -> impl Iterator<Item = (ReductionId, &[NtTransId])> {
        (0..self.reductions.len()).filter_map(move |i| {
            let id = ReductionId::new(i);
            let row = self.lookback_row(id);
            (!row.is_empty()).then_some((id, row))
        })
    }

    /// The nullable set the relations were built with.
    pub fn nullable(&self) -> &NullableSet {
        &self.nullable
    }

    /// Relation statistics (Table 1 / Figure 2 data).
    pub fn stats(&self) -> RelationStats {
        let reads_scc = tarjan_scc(&self.reads);
        let includes_scc = tarjan_scc(&self.includes);
        let nontrivial = |sizes: &[usize]| sizes.iter().filter(|&&s| s > 1).count();
        let reads_sizes = reads_scc.sizes();
        let includes_sizes = includes_scc.sizes();
        RelationStats {
            nt_transitions: self.reads.node_count(),
            reads_edges: self.reads.edge_count(),
            includes_edges: self.includes.edge_count(),
            lookback_edges: self.lookback_slab.len(),
            reads_nontrivial_sccs: nontrivial(&reads_sizes)
                + (0..self.reads.node_count())
                    .filter(|&i| {
                        reads_sizes[reads_scc.component(i)] == 1 && self.reads.has_self_loop(i)
                    })
                    .count(),
            includes_nontrivial_sccs: nontrivial(&includes_sizes),
            includes_max_scc: includes_sizes.iter().copied().max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalr_automata::Lr0Automaton;
    use lalr_grammar::parse_grammar;

    fn setup(src: &str) -> (Grammar, Lr0Automaton) {
        let g = parse_grammar(src).unwrap();
        let lr0 = Lr0Automaton::build(&g);
        (g, lr0)
    }

    #[test]
    fn dr_contains_shiftable_terminals() {
        let (g, lr0) = setup("e : e \"+\" \"x\" | \"x\" ;");
        let rel = Relations::build(&g, &lr0);
        // The transition (0, e) reaches the accept state where "+" shifts.
        let e = g.start();
        let i = lr0.nt_transition_id(StateId::START, e).unwrap();
        let plus = g.terminal_by_name("+").unwrap();
        assert!(rel.dr().get(i.index(), plus.index()));
        // And $ is in DR because the target is the accept state.
        assert!(rel.dr().get(i.index(), Terminal::EOF.index()));
    }

    #[test]
    fn reads_edges_only_for_nullable_successors() {
        let (g, lr0) = setup("s : a b ; a : \"x\" ; b : \"y\" | ;");
        let rel = Relations::build(&g, &lr0);
        // After the transition on `a`, a transition on nullable `b` follows:
        // (0-on-a) reads (that state, b). `a` is not nullable so the start
        // transition on `s`... has no reads successor.
        let a = g.nonterminal_by_name("a").unwrap();
        let i = lr0.nt_transition_id(StateId::START, a).unwrap();
        assert_eq!(rel.reads().successors(i.index()).len(), 1);
        let s_id = lr0.nt_transition_id(StateId::START, g.start()).unwrap();
        assert_eq!(rel.reads().successors(s_id.index()).len(), 0);
    }

    #[test]
    fn includes_respects_nullable_tails() {
        let (g, lr0) = setup("s : a b ; a : \"x\" ; b : \"y\" | ;");
        let rel = Relations::build(&g, &lr0);
        let a = g.nonterminal_by_name("a").unwrap();
        let b = g.nonterminal_by_name("b").unwrap();
        let s = g.start();
        let t_a = lr0.nt_transition_id(StateId::START, a).unwrap();
        let t_s = lr0.nt_transition_id(StateId::START, s).unwrap();
        // (0, a) includes (0, s) because s → a b with b nullable.
        assert!(rel
            .includes()
            .successors(t_a.index())
            .contains(&(t_s.index() as u32)));
        // (p, b) includes (0, s) because s → a b with empty tail.
        let p = lr0
            .transition(StateId::START, Symbol::NonTerminal(a))
            .unwrap();
        let t_b = lr0.nt_transition_id(p, b).unwrap();
        assert!(rel
            .includes()
            .successors(t_b.index())
            .contains(&(t_s.index() as u32)));
        // But (0, s) includes nothing: <start> → s has a non-nullable... no,
        // s IS the whole body, so (0,s) includes (0,<start>)? There is no
        // transition on <start>, hence no includes edge.
        assert!(rel.includes().successors(t_s.index()).is_empty());
    }

    #[test]
    fn lookback_pairs_reductions_with_sources() {
        let (g, lr0) = setup("e : e \"+\" t | t ; t : \"x\" ;");
        let rel = Relations::build(&g, &lr0);
        let e = g.start();
        let plus_prod = g.productions_of(e)[0]; // e → e + t
                                                // Walk e + t from state 0 to find the reduction state.
        let p = g.production(plus_prod);
        let q = lr0.walk(StateId::START, p.rhs()).unwrap();
        let lb = rel.lookback(q, plus_prod);
        assert_eq!(lb.len(), 1);
        assert_eq!(lr0.nt_transition(lb[0]).nt, e);
        assert_eq!(lr0.nt_transition(lb[0]).from, StateId::START);
    }

    #[test]
    fn epsilon_reduction_looks_back_to_its_own_state() {
        let (g, lr0) = setup("s : a \"x\" ; a : ;");
        let rel = Relations::build(&g, &lr0);
        let a = g.nonterminal_by_name("a").unwrap();
        let eps = g.productions_of(a)[0];
        // ω = ε: p --ε--> p, so lookback of (0, a→ε) is (0, a).
        let lb = rel.lookback(StateId::START, eps);
        assert_eq!(lb.len(), 1);
        let t = lr0.nt_transition(lb[0]);
        assert_eq!((t.from, t.nt), (StateId::START, a));
    }

    #[test]
    fn stats_count_edges() {
        let (g, lr0) = setup("s : a s | \"x\" ; a : \"y\" | ;");
        let rel = Relations::build(&g, &lr0);
        let st = rel.stats();
        assert_eq!(st.nt_transitions, lr0.nt_transitions().len());
        assert_eq!(st.reads_edges, rel.reads().edge_count());
        assert_eq!(st.includes_edges, rel.includes().edge_count());
        assert!(st.lookback_edges >= g.production_count() - 1);
    }

    #[test]
    fn left_recursion_makes_includes_cycles() {
        let (g, lr0) = setup("e : e \"+\" t | t ; t : \"x\" ;");
        let rel = Relations::build(&g, &lr0);
        // e → e + t: tail "+ t" not nullable ⇒ that occurrence adds no
        // includes edge; but e → t with t's transitions gives (p,t) incl
        // (p,e). No cycle here. Check a right-recursive one instead:
        assert_eq!(rel.stats().includes_nontrivial_sccs, 0);

        let (g2, lr02) = setup("e : t \"+\" e | t ; t : \"x\" ;");
        let rel2 = Relations::build(&g2, &lr02);
        // e → t + e: trailing e ⇒ (p, e) includes (p', e) chains; still a
        // DAG for this grammar. The real cycle test lives in the corpus
        // integration tests; here we only check stats are computed.
        let _ = rel2.stats();
    }
}
