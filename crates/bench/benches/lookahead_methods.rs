//! Table 2 — look-ahead computation time per method on the corpus.
//!
//! Reproduces the paper's central timing claim: computing LALR(1)
//! look-aheads with the relations + Digraph technique beats yacc-style
//! propagation by a small factor and canonical-LR(1)-then-merge by an
//! order of magnitude, on every realistic grammar.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lalr_automata::Lr0Automaton;
use lalr_bench::methods::Method;

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookahead_methods");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for entry in ["expr", "json", "pascal", "ada_subset", "c_subset"] {
        let grammar = lalr_corpus::by_name(entry)
            .expect("corpus entry exists")
            .grammar();
        let lr0 = Lr0Automaton::build(&grammar);
        for method in Method::ALL {
            group.bench_with_input(
                BenchmarkId::new(method.label(), entry),
                &(&grammar, &lr0),
                |b, (g, lr0)| b.iter(|| method.run(g, lr0)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
