//! The client's transport-error taxonomy: a connection that is refused,
//! one that goes silent, one that closes before replying, and one that
//! closes mid-line are four *different* failures, and each maps to its
//! own [`ServiceError`] variant so retry policy can tell them apart.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use lalr_service::client::{call_with_retry, RetryPolicy};
use lalr_service::{
    client, Daemon, DaemonConfig, Fault, FaultInjector, FaultPlan, GrammarFormat, Request,
    ServiceError, Trigger,
};

const GRAMMAR: &str = "e : e \"+\" t | t ; t : \"x\" ;";

fn compile_request() -> Request {
    Request::Compile {
        grammar: GRAMMAR.to_string(),
        format: GrammarFormat::Native,
    }
}

/// A one-shot fake server: accepts a single connection and hands it to
/// `serve` on a background thread, returning the address to dial.
fn fake_server<F>(serve: F) -> (String, std::thread::JoinHandle<()>)
where
    F: FnOnce(TcpStream) + Send + 'static,
{
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || {
        if let Ok((stream, _)) = listener.accept() {
            serve(stream);
        }
    });
    (addr, handle)
}

#[test]
fn a_dead_port_is_reported_as_refused() {
    // Bind and immediately drop to obtain a port with no listener.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let err = client::call(&addr, &compile_request(), None, Duration::from_secs(5)).unwrap_err();
    assert!(matches!(err, ServiceError::Refused(_)), "{err:?}");
    assert!(err.is_retryable());
}

#[test]
fn a_silent_server_is_reported_as_timeout() {
    let (addr, handle) = fake_server(|stream| {
        // Accept, read nothing, say nothing, hold the socket open past
        // the client's timeout.
        std::thread::sleep(Duration::from_millis(500));
        drop(stream);
    });
    let err =
        client::call(&addr, &compile_request(), None, Duration::from_millis(100)).unwrap_err();
    assert!(matches!(err, ServiceError::Timeout(_)), "{err:?}");
    assert!(err.is_retryable());
    handle.join().unwrap();
}

/// Consumes one request line so that closing afterwards sends a clean
/// FIN instead of an RST (unread bytes at close reset the connection).
fn swallow_request(stream: &TcpStream) {
    let mut line = String::new();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
}

#[test]
fn a_connection_dropped_before_any_reply_is_closed_not_timeout() {
    let (addr, handle) = fake_server(|stream| {
        swallow_request(&stream);
        drop(stream);
    });
    let err = client::call(&addr, &compile_request(), None, Duration::from_secs(5)).unwrap_err();
    match &err {
        ServiceError::Closed(msg) => {
            assert!(msg.contains("before a response"), "{msg}")
        }
        other => panic!("expected Closed, got {other:?}"),
    }
    assert!(err.is_retryable());
    handle.join().unwrap();
}

#[test]
fn a_reply_cut_mid_line_is_closed_with_the_byte_count() {
    let (addr, handle) = fake_server(|mut stream| {
        // Half a response and no newline, then hang up — exactly what
        // the daemon.write PartialWrite failpoint produces server-side.
        swallow_request(&stream);
        stream.write_all(b"{\"ok\":true,\"op\":\"comp").unwrap();
        stream.flush().unwrap();
    });
    let err = client::call(&addr, &compile_request(), None, Duration::from_secs(5)).unwrap_err();
    match &err {
        ServiceError::Closed(msg) => {
            assert!(msg.contains("mid-response"), "{msg}");
            assert!(msg.contains("21 bytes"), "{msg}");
        }
        other => panic!("expected Closed, got {other:?}"),
    }
    assert!(err.is_retryable());
    handle.join().unwrap();
}

#[test]
fn client_side_failpoints_surface_as_their_transport_errors() {
    // No server needed: client.connect fires before any dial.
    let faults = FaultPlan::new(3)
        .rule("client.connect", Fault::Error, Trigger::OnHits(vec![1]))
        .build();
    let err = call_with_retry(
        "127.0.0.1:1",
        &compile_request(),
        None,
        Duration::from_secs(1),
        &RetryPolicy::none(),
        &faults,
    )
    .unwrap_err();
    assert!(matches!(err, ServiceError::Refused(_)), "{err:?}");
    assert_eq!(faults.injected_at("client.connect"), 1);

    // client.write and client.read inject against a live daemon.
    let daemon = Daemon::start(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        ..DaemonConfig::default()
    })
    .unwrap();
    for point in ["client.write", "client.read"] {
        let faults = FaultPlan::new(3)
            .rule(point, Fault::Error, Trigger::OnHits(vec![1]))
            .build();
        let err = call_with_retry(
            &daemon.addr().to_string(),
            &compile_request(),
            None,
            Duration::from_secs(5),
            &RetryPolicy::none(),
            &faults,
        )
        .unwrap_err();
        assert!(matches!(err, ServiceError::Io(_)), "{point}: {err:?}");
        assert_eq!(faults.injected_at(point), 1, "{point}");
    }
    daemon.stop();
    daemon.join();
}

#[test]
fn retry_recovers_from_two_injected_connect_failures() {
    let daemon = Daemon::start(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        ..DaemonConfig::default()
    })
    .unwrap();
    // First two dials are shot down; the third goes through, so the
    // reply must arrive stamped `attempts == 3`.
    let faults = FaultPlan::new(9)
        .rule("client.connect", Fault::Error, Trigger::OnHits(vec![1, 2]))
        .build();
    let policy = RetryPolicy {
        retries: 4,
        backoff: Duration::from_millis(1),
        cap: Duration::from_millis(8),
        seed: 0xD1A1,
    };
    let reply = call_with_retry(
        &daemon.addr().to_string(),
        &compile_request(),
        None,
        Duration::from_secs(5),
        &policy,
        &faults,
    )
    .unwrap();
    assert!(reply.is_ok(), "{}", reply.raw);
    assert_eq!(reply.attempts, 3, "{}", reply.raw);
    assert_eq!(faults.injected_at("client.connect"), 2);

    // With retries exhausted before the schedule runs out, the last
    // transport error is what the caller sees.
    let faults = FaultPlan::new(9)
        .rule("client.connect", Fault::Error, Trigger::Rate(1.0))
        .build();
    let policy = RetryPolicy {
        retries: 2,
        backoff: Duration::from_millis(1),
        cap: Duration::from_millis(4),
        seed: 0xD1A2,
    };
    let err = call_with_retry(
        &daemon.addr().to_string(),
        &compile_request(),
        None,
        Duration::from_secs(5),
        &policy,
        &faults,
    )
    .unwrap_err();
    assert!(matches!(err, ServiceError::Refused(_)), "{err:?}");
    assert_eq!(faults.injected_at("client.connect"), 3);

    // A plain disabled injector plus zero retries is the legacy path.
    let reply = call_with_retry(
        &daemon.addr().to_string(),
        &compile_request(),
        None,
        Duration::from_secs(5),
        &RetryPolicy::none(),
        &FaultInjector::disabled(),
    )
    .unwrap();
    assert!(reply.is_ok(), "{}", reply.raw);
    assert_eq!(reply.attempts, 1);
    daemon.stop();
    daemon.join();
}
