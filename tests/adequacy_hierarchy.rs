//! The adequacy hierarchy, demonstrated end to end on the classics corpus:
//! `LR(0) ⊂ SLR(1) ⊂ LALR(1) ⊂ LR(1)` with a witness grammar for each
//! strict inclusion, plus the NQLALR unsoundness witness the paper warns
//! about (merging look-aheads by GOTO target invents conflicts that true
//! LALR(1) does not have).

use lalr_core::{classify, GrammarClass, MethodAdequacy};

fn adequacy(name: &str) -> MethodAdequacy {
    let entry = lalr_corpus::by_name(name).unwrap_or_else(|| panic!("corpus has {name}"));
    classify(&entry.grammar())
}

#[test]
fn lr0_witness_needs_no_lookahead() {
    let m = adequacy("lr0_matched");
    assert_eq!(m.class, GrammarClass::Lr0);
    assert_eq!(m.lr0_conflicts, 0);
    assert!(!m.not_lr_k);
}

#[test]
fn slr_witness_separates_lr0_from_slr() {
    let m = adequacy("slr_expr");
    assert_eq!(m.class, GrammarClass::Slr1);
    assert!(m.lr0_conflicts > 0, "needs look-ahead at all");
    assert_eq!(m.slr_conflicts, 0, "FOLLOW sets suffice");
}

#[test]
fn lalr_witness_separates_slr_from_lalr() {
    let m = adequacy("lalr_not_slr");
    assert_eq!(m.class, GrammarClass::Lalr1);
    assert!(m.slr_conflicts > 0, "FOLLOW is too coarse here");
    assert_eq!(m.lalr_conflicts, 0, "per-transition Follow resolves it");
}

#[test]
fn lr1_witness_separates_lalr_from_lr1() {
    let m = adequacy("lr1_not_lalr");
    assert_eq!(m.class, GrammarClass::Lr1);
    assert!(m.lalr_conflicts > 0, "state merging clashes the reductions");
    assert_eq!(
        m.lr1_conflicts, 0,
        "canonical LR(1) keeps the contexts apart"
    );
}

#[test]
fn ambiguous_witness_is_beyond_lr1() {
    let m = adequacy("dangling_else");
    assert_eq!(m.class, GrammarClass::NotLr1);
    assert!(m.lr1_conflicts > 0);
}

#[test]
fn reads_cycle_witness_is_not_lr_k() {
    let m = adequacy("reads_cycle");
    assert!(m.not_lr_k, "a nontrivial reads cycle proves non-LR(k)");
}

#[test]
fn nqlalr_is_unsound_where_lalr_is_adequate() {
    // The paper's central warning: NQLALR ("not quite LALR") merges
    // look-aheads by GOTO target, which over-approximates Follow and
    // reports conflicts on grammars that true LALR(1) handles cleanly.
    let m = adequacy("nqlalr_witness");
    assert_eq!(m.lalr_conflicts, 0, "the witness is LALR(1)-adequate");
    assert!(
        m.nqlalr_conflicts > m.lalr_conflicts,
        "NQLALR must report spurious conflicts on the witness (got {})",
        m.nqlalr_conflicts
    );
}

#[test]
fn conflict_counts_are_monotone_down_the_hierarchy() {
    // Across the *entire* corpus: a strictly stronger method never has
    // more conflicts (LR(1) is compared on adequacy, not raw counts,
    // because state splitting can multiply conflict sites).
    for entry in lalr_corpus::all_entries() {
        let m = classify(&entry.grammar());
        assert!(
            m.slr_conflicts <= m.lr0_conflicts,
            "{}: SLR ({}) must not exceed LR(0) ({})",
            entry.name,
            m.slr_conflicts,
            m.lr0_conflicts
        );
        assert!(
            m.lalr_conflicts <= m.slr_conflicts,
            "{}: LALR ({}) must not exceed SLR ({})",
            entry.name,
            m.lalr_conflicts,
            m.slr_conflicts
        );
        assert!(
            m.nqlalr_conflicts >= m.lalr_conflicts,
            "{}: NQLALR ({}) must not beat LALR ({})",
            entry.name,
            m.nqlalr_conflicts,
            m.lalr_conflicts
        );
        assert!(
            m.lalr_conflicts > 0 || m.lr1_conflicts == 0,
            "{}: LALR-adequate implies LR(1)-adequate",
            entry.name
        );
    }
}

#[test]
fn each_strict_inclusion_has_its_witness() {
    // The hierarchy table, one row per classic, in class order.
    let table: Vec<(&str, GrammarClass)> = [
        "lr0_matched",
        "slr_expr",
        "lalr_not_slr",
        "lr1_not_lalr",
        "dangling_else",
    ]
    .iter()
    .map(|&n| (n, adequacy(n).class))
    .collect();
    let classes: Vec<GrammarClass> = table.iter().map(|&(_, c)| c).collect();
    assert_eq!(
        classes,
        vec![
            GrammarClass::Lr0,
            GrammarClass::Slr1,
            GrammarClass::Lalr1,
            GrammarClass::Lr1,
            GrammarClass::NotLr1,
        ],
        "witness table: {table:?}"
    );
}
