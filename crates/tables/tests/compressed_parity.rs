//! Corpus-wide parity between the dense `ParseTable` and the
//! default-reduction `CompressedTable` when driving the runtime parser:
//! identical accept/reject verdicts on every input, and identical parse
//! trees on every accepted one.
//!
//! Inputs per grammar: generated sample sentences (positives) plus
//! systematic mutations of each (truncation, duplication, adjacent
//! swap) whose verdicts the two tables must also agree on.

use lalr_automata::Lr0Automaton;
use lalr_core::LalrAnalysis;
use lalr_runtime::{CompressedSource, Parser, Token};
use lalr_tables::{build_table, CompressedTable, ParseTable, TableOptions};

fn tokens(table: &ParseTable, words: &[String]) -> Vec<Token> {
    words
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let t = table
                .terminal_by_name(w)
                .unwrap_or_else(|| panic!("terminal {w:?} missing from table"));
            Token::new(t, w.clone(), i)
        })
        .collect()
}

/// Each positive sentence plus a handful of deterministic mutations.
fn variants(sentence: &[String]) -> Vec<Vec<String>> {
    let mut out = vec![sentence.to_vec()];
    if !sentence.is_empty() {
        // Drop the last token (often an unfinished phrase).
        out.push(sentence[..sentence.len() - 1].to_vec());
        // Duplicate the first token.
        let mut dup = sentence.to_vec();
        dup.insert(0, sentence[0].clone());
        out.push(dup);
    }
    if sentence.len() >= 2 {
        // Swap the first adjacent pair.
        let mut swapped = sentence.to_vec();
        swapped.swap(0, 1);
        out.push(swapped);
        // Drop the first token.
        out.push(sentence[1..].to_vec());
    }
    out
}

#[test]
fn compressed_and_dense_tables_parse_identically_across_the_corpus() {
    let mut grammars = 0usize;
    let mut cases = 0usize;
    let mut accepted = 0usize;
    let mut rejected = 0usize;

    for entry in lalr_corpus::all_entries() {
        let grammar = entry.grammar();
        let lr0 = Lr0Automaton::build(&grammar);
        let la = LalrAnalysis::compute(&grammar, &lr0).into_lookaheads();
        let dense = build_table(&grammar, &lr0, &la, TableOptions::default());
        let compressed = CompressedTable::from_dense(&dense);
        let source = CompressedSource::new(&compressed, &dense);
        let dense_parser = Parser::new(&dense);
        let compressed_parser = Parser::new(&source);
        grammars += 1;

        let word_sets: Vec<Vec<String>> = lalr_corpus::sentences::generate_many(&grammar, 1, 8, 25)
            .iter()
            .map(|s| {
                s.iter()
                    .map(|&t| grammar.terminal_name(t).to_string())
                    .collect()
            })
            .collect();

        for words in &word_sets {
            for variant in variants(words) {
                cases += 1;
                let dense_result = dense_parser.parse(tokens(&dense, &variant));
                let compressed_result = compressed_parser.parse(tokens(&dense, &variant));
                match (&dense_result, &compressed_result) {
                    (Ok(a), Ok(b)) => {
                        accepted += 1;
                        assert_eq!(a, b, "{}: trees diverge on {:?}", entry.name, variant);
                    }
                    (Err(_), Err(_)) => rejected += 1,
                    _ => panic!(
                        "{}: verdicts diverge on {:?}: dense={:?} compressed={:?}",
                        entry.name,
                        variant,
                        dense_result.is_ok(),
                        compressed_result.is_ok()
                    ),
                }
            }
        }
    }

    // The corpus really exercised both verdicts at scale.
    assert!(grammars >= 10, "corpus too small: {grammars}");
    assert!(accepted >= 50, "too few accepted cases: {accepted}/{cases}");
    assert!(rejected >= 50, "too few rejected cases: {rejected}/{cases}");
}
