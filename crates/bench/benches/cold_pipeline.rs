//! E11 — cold end-to-end pipeline: `source text → grammar → LR(0) machine
//! → LA sets`, per method and corpus grammar.
//!
//! Unlike `lookahead_methods` (which prebuilds and shares the LR(0)
//! machine), every iteration here starts from the grammar source, so the
//! numbers include parsing, automaton construction and all intermediate
//! allocation — the workload the dense-layout overhaul (ReductionId rows,
//! CSR lookback, no-clone kernel interning) targets. The companion
//! allocation counts live in `report table7` and the `alloc_probe` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lalr_automata::Lr0Automaton;
use lalr_bench::methods::Method;

fn bench_cold_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("cold_pipeline");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for name in ["expr", "json", "pascal", "ada_subset", "c_subset"] {
        let entry = lalr_corpus::by_name(name).expect("corpus entry exists");
        for method in Method::ALL {
            group.bench_with_input(
                BenchmarkId::new(method.label(), name),
                &entry,
                |b, entry| {
                    b.iter(|| {
                        let grammar = entry.grammar();
                        let lr0 = Lr0Automaton::build(&grammar);
                        let la = method.run(&grammar, &lr0);
                        std::hint::black_box(la.total_bits())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cold_pipeline);
criterion_main!(benches);
