//! The engine behind the `lalrgen` binary.
//!
//! All commands are pure functions from parsed arguments to a `String`
//! (unit-testable); the binary only does I/O.
//!
//! ```text
//! lalrgen analyze  <grammar>             full DeRemer-Pennello report
//! lalrgen states   <grammar>             y.output-style state listing
//! lalrgen explain  <grammar>             explain each conflict (prefix + relation chains)
//! lalrgen classify <grammar>             one-line grammar class
//! lalrgen table    <grammar>             ACTION/GOTO matrix
//! lalrgen dot      <grammar>             LR(0) automaton in Graphviz DOT
//! lalrgen codegen  <grammar> [name]      standalone Rust parser module
//! lalrgen sentences <grammar> [n]        sample n random sentences
//! lalrgen parse    <grammar> <input> [--number T] [--ident T] [--string T] [--remote]
//! lalrgen check    <grammar> <cases>  run a +/- accept/reject case file
//! lalrgen profile  <grammar> [--trace-out F]  per-phase pipeline timing report
//! lalrgen serve    [--addr A] [--cache-mb N] [--max-conn N]   run the compile daemon
//! lalrgen client   <op> [grammar] [--addr A] [--input S]…     one request to a daemon
//! lalrgen stats    [--addr A] [--metrics]                     daemon statistics
//! lalrgen trace    [--addr A] [--op OP] [--slow-us N]         dump the flight recorder
//! lalrgen top      [--addr A] [--interval-ms N]               live daemon telemetry view
//! ```
//!
//! `<grammar>` is a path to a grammar file, or the name of a built-in
//! corpus grammar (e.g. `expr`, `pascal`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use lalr_automata::Lr0Automaton;
use lalr_core::{classify_with, LalrAnalysis, Parallelism};
use lalr_grammar::{Grammar, GrammarStats};
use lalr_runtime::{Lexer, Parser};
use lalr_tables::{build_table, TableOptions};

/// A CLI failure: message plus suggested exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code to use.
    pub code: i32,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn fail(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
        code: 1,
    }
}

/// Usage text.
pub const USAGE: &str = "usage: lalrgen <command> <grammar> [args] [--threads N]
  commands: analyze, explain, classify, states, table, dot, codegen,
            sentences, check, parse, profile, serve, store, client, stats,
            trace, top
  <grammar> is a file path or a corpus name (try: expr, json, pascal, c_subset)
  --threads N runs the look-ahead pipeline on N worker threads (same output, faster on large grammars)
  profile <grammar> [--trace-out FILE]   per-phase wall/alloc breakdown of the
         grammar -> LA pipeline; --trace-out writes a Chrome trace (chrome://tracing)
  serve  [--addr A] [--cache-mb N] [--max-conn N] [--deadline-ms N] [--max-pending N]
         [--drain-ms N] [--chaos SPEC] [--chaos-seed N] [--store DIR] [--no-store]
         [--shards N] [--threaded] [--trace-sample N] [--trace-capacity N]
         [--max-conn-per-peer N] [--rate-limit N] [--rate-burst N]
         [--write-budget-ms N] [--reject-timeout-ms N]
         run the compile daemon
         --chaos arms deterministic failpoints, e.g. \"daemon.write:partial:0.05\"
         --store persists compiled artifacts to DIR (mmap-loaded on repeat
         requests, surviving restarts); --no-store wins over --store
         --shards N multiplexes connections over N epoll event-loop shards;
         --threaded selects the thread-per-connection reference front end
         --trace-sample N records every Nth request in the flight recorder
         (default 1 = all; 0 disables tracing entirely); --trace-capacity N
         sizes the recorder ring (default 256, rounded up to a power of two)
         --max-conn-per-peer N caps concurrent connections per source IP
         (over-quota accepts get a retryable throttled line; 0 = off);
         --rate-limit N admits at most N request lines/s (token bucket,
         burst --rate-burst, default = N); --write-budget-ms N closes
         connections that cannot drain queued responses in time;
         --reject-timeout-ms N bounds the rejection-line write (default 1000)
  store  <ls|verify|gc> --dir DIR [--max-age-s N]   maintain a persistent
         artifact store: list entries, verify checksums (exit 1 on any
         corrupt file), or remove artifacts not used for N seconds
  client <compile|classify|table|parse|stats|metrics|trace|health|shutdown> [grammar]
         [--addr A] [--input \"t t t\"]… [--recover] [--compressed] [--deadline-ms N]
         [--timeout-ms N] [--retries N] [--backoff-ms N]   retry transient failures
         with capped exponential backoff and deterministic jitter; client parse
         repeats --input to send one batch (documents are space-separated
         terminal names), --recover asks for error-recovery diagnostics
  parse  <grammar> <input> [--number T] [--ident T] [--string T]
         [--remote [--addr A]]   parse locally, or with --remote send the
         document to a running daemon as a one-document batch
  stats  [--addr A] [--metrics]   daemon statistics snapshot (--metrics: Prometheus text)
  trace  [--addr A] [--op OP] [--errors] [--slow-us N] [--limit N]
         [--chrome-out FILE]   dump the daemon's request flight recorder with a
         per-stage (queue/cache/compile/parse/write) breakdown; --chrome-out
         writes the traces as Chrome trace JSON (chrome://tracing)
  top    [--addr A] [--interval-ms N] [--iterations N]   live terminal view of
         daemon throughput, per-shard event-loop telemetry, and stage times
         (default: refresh every second until interrupted)";

/// Every command name, for the unknown-command error.
const COMMANDS: &str = "analyze, explain, classify, states, table, dot, codegen, sentences, check, parse, profile, serve, store, client, stats, trace, top";

/// Loads a grammar from a corpus name or a file path. Files ending in
/// `.y` are read with the yacc/bison reader (actions stripped).
pub fn load_grammar(arg: &str) -> Result<Grammar, CliError> {
    if let Some(entry) = lalr_corpus::by_name(arg) {
        return Ok(entry.grammar());
    }
    let text =
        std::fs::read_to_string(arg).map_err(|e| fail(format!("cannot read {arg:?}: {e}")))?;
    let parsed = if arg.ends_with(".y") {
        lalr_grammar::parse_yacc(&text)
    } else {
        lalr_grammar::parse_grammar(&text)
    };
    parsed.map_err(|e| fail(format!("{arg}: {e}")))
}

/// Extracts a global `--threads N` flag (anywhere after the command) and
/// returns the remaining arguments plus the resulting configuration.
fn extract_parallelism(args: &[String]) -> Result<(Vec<String>, Parallelism), CliError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut parallelism = Parallelism::sequential();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threads" {
            let value = args
                .get(i + 1)
                .ok_or_else(|| fail("--threads needs a count"))?;
            let n: usize = value
                .parse()
                .map_err(|_| fail(format!("bad thread count {value:?}")))?;
            parallelism = Parallelism::new(n);
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    Ok((rest, parallelism))
}

/// Dispatches a full argument vector (without `argv[0]`).
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (args, par) = extract_parallelism(args)?;
    let cmd = args.first().map(String::as_str).unwrap_or("");
    let rest = args.get(1..).unwrap_or(&[]);
    match cmd {
        "analyze" => cmd_analyze(rest, &par),
        "explain" => cmd_explain(rest, &par),
        "classify" => cmd_classify(rest, &par),
        "states" => cmd_states(rest, &par),
        "table" => cmd_table(rest, &par),
        "dot" => cmd_dot(rest),
        "codegen" => cmd_codegen(rest, &par),
        "sentences" => cmd_sentences(rest),
        "check" => cmd_check(rest, &par),
        "parse" => cmd_parse(rest, &par),
        "profile" => cmd_profile(rest, &par),
        "serve" => cmd_serve(rest, &par),
        "store" => cmd_store(rest),
        "client" => cmd_client(rest),
        "stats" => cmd_stats(rest),
        "trace" => cmd_trace(rest),
        "top" => cmd_top(rest),
        "" | "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError {
            message: format!("unknown command {other:?} (available: {COMMANDS})\n{USAGE}"),
            code: 2,
        }),
    }
}

fn grammar_arg<'a>(args: &'a [String], what: &str) -> Result<&'a str, CliError> {
    args.first().map(String::as_str).ok_or_else(|| CliError {
        message: format!("{what} needs a grammar argument\n{USAGE}"),
        code: 2,
    })
}

fn cmd_analyze(args: &[String], par: &Parallelism) -> Result<String, CliError> {
    let name = grammar_arg(args, "analyze")?;
    let grammar = load_grammar(name)?;
    let stats = GrammarStats::compute(&grammar);
    let lr0 = Lr0Automaton::build(&grammar);
    let analysis = LalrAnalysis::compute_with(&grammar, &lr0, par);
    let rs = analysis.relation_stats();
    let conflicts = analysis.conflicts(&grammar, &lr0);

    let mut out = String::new();
    let _ = writeln!(out, "grammar {name}");
    let _ = writeln!(
        out,
        "  terminals {}  nonterminals {}  productions {}  |G| {}",
        stats.terminals, stats.nonterminals, stats.productions, stats.size
    );
    let _ = writeln!(
        out,
        "  nullable {}  left-recursive {}  epsilon-productions {}  useless {}",
        stats.nullable_nonterminals,
        stats.left_recursive,
        stats.epsilon_productions,
        stats.useless_nonterminals
    );
    let _ = writeln!(
        out,
        "lr0 states {}  nt-transitions {}  reads {}  includes {}  lookback {}",
        lr0.state_count(),
        rs.nt_transitions,
        rs.reads_edges,
        rs.includes_edges,
        rs.lookback_edges
    );
    for (label, ds) in [
        ("reads   ", analysis.reads_traversal()),
        ("includes", analysis.includes_traversal()),
    ] {
        let _ = writeln!(
            out,
            "digraph {label}  sccs {}  nontrivial {}  max-scc {}  cyclic-nodes {}",
            ds.scc_count, ds.nontrivial_sccs, ds.max_scc_size, ds.cyclic_nodes
        );
    }
    let la = analysis.lookaheads();
    let layout = la.layout();
    let _ = writeln!(
        out,
        "row layout: {}  ({} terminals, {} word(s)/row, wide lane: {})",
        layout.name(),
        la.terminal_count(),
        layout.words(),
        lalr_core::kernel_dispatch_name(),
    );
    // Cardinality histogram of the look-ahead sets: how full the rows
    // the kernels sweep actually are.
    let mut buckets = [0usize; 6];
    for (_, set) in la.iter() {
        let c = set.count();
        let b = match c {
            0 => 0,
            1 => 1,
            2..=3 => 2,
            4..=7 => 3,
            8..=15 => 4,
            _ => 5,
        };
        buckets[b] += 1;
    }
    let _ = writeln!(
        out,
        "la-set terminal counts: 0:{} 1:{} 2-3:{} 4-7:{} 8-15:{} 16+:{}",
        buckets[0], buckets[1], buckets[2], buckets[3], buckets[4], buckets[5]
    );
    if analysis.grammar_not_lr_k() {
        let _ = writeln!(out, "NOT LR(k) for any k: the reads relation is cyclic");
    }
    let _ = writeln!(out, "lalr(1) conflicts: {}", conflicts.len());
    for c in conflicts.iter().take(20) {
        let _ = writeln!(out, "  {}", c.display(&grammar));
    }
    Ok(out)
}

fn cmd_classify(args: &[String], par: &Parallelism) -> Result<String, CliError> {
    let name = grammar_arg(args, "classify")?;
    let grammar = load_grammar(name)?;
    let m = classify_with(&grammar, par);
    Ok(format!(
        "{name}: {} (conflicts lr0={} slr={} nqlalr={} lalr={} lr1={}{})\n",
        m.class,
        m.lr0_conflicts,
        m.slr_conflicts,
        m.nqlalr_conflicts,
        m.lalr_conflicts,
        m.lr1_conflicts,
        if m.not_lr_k { ", reads cycle" } else { "" }
    ))
}

/// Explains every conflict with a viable prefix and the relation chains
/// that carry the offending terminal (see `lalr_core::explain_conflict`).
fn cmd_explain(args: &[String], par: &Parallelism) -> Result<String, CliError> {
    let name = grammar_arg(args, "explain")?;
    let grammar = load_grammar(name)?;
    let lr0 = Lr0Automaton::build(&grammar);
    let relations = lalr_core::Relations::build(&grammar, &lr0);
    let analysis = LalrAnalysis::compute_with(&grammar, &lr0, par);
    let conflicts = analysis.conflicts(&grammar, &lr0);
    if conflicts.is_empty() {
        return Ok(format!("{name}: no LALR(1) conflicts\n"));
    }
    let mut out = String::new();
    for c in conflicts.iter().take(10) {
        let _ = writeln!(
            out,
            "{}",
            lalr_core::explain_conflict(&grammar, &lr0, &relations, &analysis, c)
        );
    }
    if conflicts.len() > 10 {
        let _ = writeln!(out, "... and {} more", conflicts.len() - 10);
    }
    Ok(out)
}

/// The yacc `y.output` analogue: every state with its kernel items,
/// look-ahead-annotated reductions, and transitions.
fn cmd_states(args: &[String], par: &Parallelism) -> Result<String, CliError> {
    let name = grammar_arg(args, "states")?;
    let grammar = load_grammar(name)?;
    let lr0 = Lr0Automaton::build(&grammar);
    let analysis = LalrAnalysis::compute_with(&grammar, &lr0, par);
    let la = analysis.lookaheads();

    let mut out = String::new();
    for state in lr0.states() {
        let _ = writeln!(out, "state {}", state.index());
        for item in lr0.kernel(state).items() {
            let _ = writeln!(out, "    {}", item.display(&grammar));
        }
        for &prod in lr0.reductions(state) {
            let names: Vec<&str> = la
                .la(state, prod)
                .map(|set| {
                    set.iter()
                        .map(|t| grammar.terminal_name(lalr_grammar::Terminal::new(t)))
                        .collect()
                })
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "    reduce {}  [{}]",
                grammar.production_to_string(prod),
                names.join(" ")
            );
        }
        for &(sym, to) in lr0.transitions(state) {
            let verb = if sym.is_terminal() { "shift" } else { "goto" };
            let _ = writeln!(
                out,
                "    {} {} -> state {}",
                verb,
                grammar.name_of(sym),
                to.index()
            );
        }
        let _ = writeln!(out);
    }
    Ok(out)
}

fn cmd_table(args: &[String], par: &Parallelism) -> Result<String, CliError> {
    let name = grammar_arg(args, "table")?;
    let grammar = load_grammar(name)?;
    let lr0 = Lr0Automaton::build(&grammar);
    let analysis = LalrAnalysis::compute_with(&grammar, &lr0, par);
    let table = build_table(
        &grammar,
        &lr0,
        analysis.lookaheads(),
        TableOptions::default(),
    );
    let mut out = table.to_string();
    if !table.resolutions().is_empty() {
        let _ = writeln!(out, "\n{} conflict(s) resolved:", table.resolutions().len());
        for r in table.resolutions() {
            let _ = writeln!(
                out,
                "  state {} on {:?}: kept {} over {} ({:?})",
                r.state,
                table.terminal_name(r.terminal),
                r.kept,
                r.discarded,
                r.reason
            );
        }
    }
    Ok(out)
}

fn cmd_dot(args: &[String]) -> Result<String, CliError> {
    let name = grammar_arg(args, "dot")?;
    let grammar = load_grammar(name)?;
    Ok(Lr0Automaton::build(&grammar).to_dot(&grammar))
}

fn cmd_codegen(args: &[String], par: &Parallelism) -> Result<String, CliError> {
    let name = grammar_arg(args, "codegen")?;
    let grammar = load_grammar(name)?;
    let module = args.get(1).map(String::as_str).unwrap_or("parser");
    let lr0 = Lr0Automaton::build(&grammar);
    let analysis = LalrAnalysis::compute_with(&grammar, &lr0, par);
    let table = build_table(
        &grammar,
        &lr0,
        analysis.lookaheads(),
        TableOptions::default(),
    );
    Ok(lalr_codegen::generate_module(&table, module))
}

fn cmd_sentences(args: &[String]) -> Result<String, CliError> {
    let name = grammar_arg(args, "sentences")?;
    let grammar = load_grammar(name)?;
    let count: usize = args
        .get(1)
        .map(|s| s.parse().map_err(|_| fail(format!("bad count {s:?}"))))
        .transpose()?
        .unwrap_or(5);
    let mut out = String::new();
    for s in lalr_corpus::sentences::generate_many(&grammar, 1, count, 30) {
        let words: Vec<&str> = s.iter().map(|&t| grammar.terminal_name(t)).collect();
        let _ = writeln!(out, "{}", words.join(" "));
    }
    if out.is_empty() {
        return Err(fail("the grammar generates no sentences"));
    }
    Ok(out)
}

/// Runs a case file: each non-comment line is `+ tokens…` (must accept)
/// or `- tokens…` (must reject); tokens are whitespace-separated terminal
/// names. Exit is nonzero when any case fails.
fn cmd_check(args: &[String], par: &Parallelism) -> Result<String, CliError> {
    let name = grammar_arg(args, "check")?;
    let grammar = load_grammar(name)?;
    let cases_path = args
        .get(1)
        .ok_or_else(|| fail("check needs a cases file"))?;
    let cases = std::fs::read_to_string(cases_path)
        .map_err(|e| fail(format!("cannot read {cases_path:?}: {e}")))?;

    let lr0 = Lr0Automaton::build(&grammar);
    let analysis = LalrAnalysis::compute_with(&grammar, &lr0, par);
    let table = build_table(
        &grammar,
        &lr0,
        analysis.lookaheads(),
        TableOptions::default(),
    );
    let parser = Parser::new(&table);

    let mut out = String::new();
    let mut failures = 0usize;
    let mut total = 0usize;
    for (lineno, line) in cases.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (expect_accept, rest) = match line.split_at(1) {
            ("+", rest) => (true, rest),
            ("-", rest) => (false, rest),
            _ => {
                return Err(fail(format!(
                    "{cases_path}:{}: lines start with + or -",
                    lineno + 1
                )))
            }
        };
        total += 1;
        let mut tokens = Vec::new();
        let mut lex_ok = true;
        for (i, word) in rest.split_whitespace().enumerate() {
            match table.terminal_by_name(word) {
                Some(t) => tokens.push(lalr_runtime::Token::new(t, word, i)),
                None => {
                    lex_ok = false;
                    break;
                }
            }
        }
        let accepted = lex_ok && parser.parse(tokens).is_ok();
        if accepted != expect_accept {
            failures += 1;
            let _ = writeln!(
                out,
                "FAIL {cases_path}:{}: expected {}, got {}: {}",
                lineno + 1,
                if expect_accept { "accept" } else { "reject" },
                if accepted { "accept" } else { "reject" },
                rest.trim()
            );
        }
    }
    let _ = writeln!(out, "{} cases, {} failures", total, failures);
    if failures > 0 {
        return Err(CliError {
            message: out,
            code: 1,
        });
    }
    Ok(out)
}

fn cmd_parse(args: &[String], par: &Parallelism) -> Result<String, CliError> {
    let name = grammar_arg(args, "parse")?;
    let input = args
        .get(1)
        .ok_or_else(|| fail("parse needs an input string"))?;

    // Optional flags: lexer classes (local only), or --remote [--addr].
    let mut remote = false;
    let mut addr = DEFAULT_ADDR.to_string();
    let mut classes: Vec<(&str, &str)> = Vec::new();
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--remote" => {
                remote = true;
                i += 1;
            }
            "--addr" => {
                addr = flag_value(args, i, "--addr")?.to_string();
                i += 2;
            }
            flag @ ("--number" | "--ident" | "--string") => {
                classes.push((flag, flag_value(args, i, flag)?));
                i += 2;
            }
            other => {
                return Err(fail(format!(
                    "unknown flag {other:?} for parse (available: --number, --ident, --string, --remote, --addr)"
                )))
            }
        }
    }

    if remote {
        if let Some((flag, _)) = classes.first() {
            return Err(fail(format!(
                "{flag} tokenizes locally and cannot combine with --remote \
                 (remote documents are space-separated terminal names)"
            )));
        }
        return parse_remote(name, input, &addr);
    }

    let grammar = load_grammar(name)?;
    let lr0 = Lr0Automaton::build(&grammar);
    let analysis = LalrAnalysis::compute_with(&grammar, &lr0, par);
    let table = build_table(
        &grammar,
        &lr0,
        analysis.lookaheads(),
        TableOptions::default(),
    );

    let mut builder = Lexer::for_table(&table);
    for (flag, terminal) in classes {
        builder = match flag {
            "--number" => builder.number(terminal),
            "--ident" => builder.identifier(terminal),
            _ => builder.string(terminal),
        };
    }
    let lexer = builder.build();
    let tokens = lexer.tokenize(input).map_err(|e| fail(e.to_string()))?;
    match Parser::new(&table).parse(tokens) {
        Ok(tree) => Ok(format!("accepted\n{}\n", tree.to_sexpr(&table))),
        Err(e) => Err(fail(format!("rejected: {e}"))),
    }
}

/// `lalrgen parse --remote`: ship the document to a running daemon as a
/// one-document batch and render the verdict like the local path does.
fn parse_remote(name: &str, input: &str, addr: &str) -> Result<String, CliError> {
    let (grammar, format) = grammar_text(name)?;
    let request = lalr_service::Request::Parse {
        target: lalr_service::ParseTarget::Text { grammar, format },
        documents: vec![input.to_string()],
        recover: false,
        sync: Vec::new(),
    };
    let reply = lalr_service::call_with_retry(
        addr,
        &request,
        None,
        std::time::Duration::from_millis(30_000),
        &lalr_service::RetryPolicy::default(),
        &lalr_service::FaultInjector::disabled(),
    )
    .map_err(|e| fail(e.to_string()))?;
    if !reply.is_ok() {
        return Err(CliError {
            message: reply.raw,
            code: 1,
        });
    }
    let docs = reply
        .value
        .get("docs")
        .and_then(serde_json::Value::as_arr)
        .ok_or_else(|| fail("malformed parse response: no \"docs\" field"))?;
    let doc = docs
        .first()
        .ok_or_else(|| fail("malformed parse response: empty \"docs\""))?;
    if doc
        .get("accepted")
        .and_then(serde_json::Value::as_bool)
        .unwrap_or(false)
    {
        let tree = doc.get("tree").and_then(serde_json::Value::as_str);
        Ok(format!("accepted\n{}\n", tree.unwrap_or("(no tree)")))
    } else {
        let message = doc
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(serde_json::Value::as_str)
            .unwrap_or("parse failed");
        Err(fail(format!("rejected: {message}")))
    }
}

/// `lalrgen profile`: runs the grammar → look-ahead pipeline under a
/// [`lalr_obs::CollectingRecorder`] and prints the per-phase breakdown —
/// wall time, share of the run, and allocation deltas (the counting
/// allocator from `lalr-bench` is linked into this binary, so the alloc
/// columns are real). `--trace-out FILE` additionally writes the run as
/// Chrome trace JSON, loadable in `chrome://tracing` or Perfetto.
fn cmd_profile(args: &[String], par: &Parallelism) -> Result<String, CliError> {
    let name = grammar_arg(args, "profile")?;
    let mut trace_out: Option<&str> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--trace-out" => {
                trace_out = Some(flag_value(args, i, "--trace-out")?);
                i += 2;
            }
            other => {
                return Err(fail(format!(
                    "unknown flag {other:?} for profile (available: --trace-out, --threads)"
                )))
            }
        }
    }

    let rec = lalr_obs::CollectingRecorder::with_alloc_probe(lalr_bench::alloc_counter::totals);
    let wall = std::time::Instant::now();
    let grammar = {
        let _span = lalr_obs::span(&rec, "parse");
        load_grammar(name)?
    };
    let lr0 = Lr0Automaton::build_recorded(&grammar, &rec);
    let analysis = LalrAnalysis::compute_recorded(&grammar, &lr0, par, &rec);
    let wall_ns = (wall.elapsed().as_nanos() as u64).max(1);
    let report = rec.report();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile {name}: {} lr0 states, {} reduction look-ahead sets, {} worker thread(s)",
        lr0.state_count(),
        analysis.lookaheads().reduction_count(),
        par.threads().max(1),
    );
    out.push_str(&report.to_text());
    let coverage = 100.0 * report.phase_sum_ns() as f64 / wall_ns as f64;
    let _ = writeln!(
        out,
        "\npipeline wall time {:.1}us, phase coverage {coverage:.1}%",
        wall_ns as f64 / 1_000.0
    );
    if let Some(path) = trace_out {
        std::fs::write(path, report.to_chrome_trace())
            .map_err(|e| fail(format!("cannot write {path:?}: {e}")))?;
        let _ = writeln!(out, "chrome trace: {path} ({} events)", report.events.len());
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// The service daemon and its clients (`lalr-service`).

/// Where `client` and `stats` connect when `--addr` is not given; the
/// same default the daemon binds.
const DEFAULT_ADDR: &str = "127.0.0.1:4077";

fn flag_value<'a>(args: &'a [String], i: usize, flag: &str) -> Result<&'a str, CliError> {
    args.get(i + 1)
        .map(String::as_str)
        .ok_or_else(|| fail(format!("{flag} needs a value")))
}

fn num_flag<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, CliError> {
    value
        .parse()
        .map_err(|_| fail(format!("bad value {value:?} for {flag}")))
}

/// Loads grammar *text* (not a parsed grammar): the daemon compiles
/// server-side, so the client ships source. Corpus names resolve to their
/// embedded source; `.y` files are flagged for the yacc reader.
fn grammar_text(arg: &str) -> Result<(String, lalr_service::GrammarFormat), CliError> {
    if let Some(entry) = lalr_corpus::by_name(arg) {
        return Ok((
            entry.source.to_string(),
            lalr_service::GrammarFormat::Native,
        ));
    }
    let text =
        std::fs::read_to_string(arg).map_err(|e| fail(format!("cannot read {arg:?}: {e}")))?;
    let format = if arg.ends_with(".y") {
        lalr_service::GrammarFormat::Yacc
    } else {
        lalr_service::GrammarFormat::Native
    };
    Ok((text, format))
}

/// `lalrgen serve`: binds the TCP daemon and blocks until an in-band
/// `shutdown` request (or a bind error). The bound address is announced
/// on stderr immediately — with `--addr 127.0.0.1:0` that line is how
/// callers learn the picked port.
fn cmd_serve(args: &[String], par: &Parallelism) -> Result<String, CliError> {
    const FLAGS: &str = "--addr, --cache-mb, --max-conn, --deadline-ms, --max-pending, \
                         --drain-ms, --chaos, --chaos-seed, --store, --no-store, \
                         --shards, --threaded, --trace-sample, --trace-capacity, \
                         --max-conn-per-peer, --rate-limit, --rate-burst, \
                         --write-budget-ms, --reject-timeout-ms, --threads";
    let mut config = lalr_service::DaemonConfig {
        addr: DEFAULT_ADDR.to_string(),
        ..lalr_service::DaemonConfig::default()
    };
    let mut cache_mb: usize = 64;
    let mut deadline_ms: Option<u64> = None;
    let mut chaos_spec: Option<String> = None;
    let mut chaos_seed: u64 = 0;
    let mut store_dir: Option<std::path::PathBuf> = None;
    let mut no_store = false;
    let mut shards: usize = 1;
    let mut threaded = false;
    let mut trace_sample: u64 = 1;
    let mut trace_capacity: usize = 256;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            // Boolean flags consume one argument, not two.
            "--no-store" => {
                no_store = true;
                i += 1;
                continue;
            }
            "--threaded" => {
                threaded = true;
                i += 1;
                continue;
            }
            "--store" => {
                store_dir = Some(std::path::PathBuf::from(flag_value(args, i, "--store")?))
            }
            "--shards" => shards = num_flag(flag_value(args, i, "--shards")?, "--shards")?,
            "--trace-sample" => {
                trace_sample = num_flag(flag_value(args, i, "--trace-sample")?, "--trace-sample")?
            }
            "--trace-capacity" => {
                trace_capacity =
                    num_flag(flag_value(args, i, "--trace-capacity")?, "--trace-capacity")?
            }
            "--addr" => config.addr = flag_value(args, i, "--addr")?.to_string(),
            "--cache-mb" => cache_mb = num_flag(flag_value(args, i, "--cache-mb")?, "--cache-mb")?,
            "--max-conn" => {
                config.max_connections = num_flag(flag_value(args, i, "--max-conn")?, "--max-conn")?
            }
            "--deadline-ms" => {
                deadline_ms = Some(num_flag(
                    flag_value(args, i, "--deadline-ms")?,
                    "--deadline-ms",
                )?)
            }
            "--max-pending" => {
                config.service.max_pending =
                    num_flag(flag_value(args, i, "--max-pending")?, "--max-pending")?
            }
            "--drain-ms" => {
                config.drain_deadline = std::time::Duration::from_millis(num_flag(
                    flag_value(args, i, "--drain-ms")?,
                    "--drain-ms",
                )?)
            }
            "--chaos" => chaos_spec = Some(flag_value(args, i, "--chaos")?.to_string()),
            "--chaos-seed" => {
                chaos_seed = num_flag(flag_value(args, i, "--chaos-seed")?, "--chaos-seed")?
            }
            "--max-conn-per-peer" => {
                config.max_connections_per_peer = num_flag(
                    flag_value(args, i, "--max-conn-per-peer")?,
                    "--max-conn-per-peer",
                )?
            }
            "--rate-limit" => {
                config.rate_limit_per_sec =
                    num_flag(flag_value(args, i, "--rate-limit")?, "--rate-limit")?
            }
            "--rate-burst" => {
                config.rate_limit_burst =
                    num_flag(flag_value(args, i, "--rate-burst")?, "--rate-burst")?
            }
            "--write-budget-ms" => {
                config.write_budget = std::time::Duration::from_millis(num_flag(
                    flag_value(args, i, "--write-budget-ms")?,
                    "--write-budget-ms",
                )?)
            }
            "--reject-timeout-ms" => {
                config.reject_write_timeout = std::time::Duration::from_millis(num_flag(
                    flag_value(args, i, "--reject-timeout-ms")?,
                    "--reject-timeout-ms",
                )?)
            }
            other => {
                return Err(fail(format!(
                    "unknown flag {other:?} for serve (available: {FLAGS})"
                )))
            }
        }
        i += 2;
    }
    if let Some(spec) = chaos_spec {
        // One injector across the daemon's I/O failpoints and the
        // service/cache failpoints, so a single `--chaos` spec arms the
        // whole stack and `metrics` reports every rule's counters.
        let faults = lalr_service::FaultPlan::parse(&spec, chaos_seed)
            .map_err(|e| fail(format!("--chaos: {e}")))?
            .build();
        config.faults = faults.clone();
        config.service.faults = faults;
    }
    // `--threads` sizes the worker pool; without it a server uses every
    // core (unlike the one-shot commands, which default to sequential).
    config.service.workers = if par.is_parallel() {
        *par
    } else {
        Parallelism::available()
    };
    config.service.cache =
        (cache_mb > 0).then(|| lalr_service::CacheConfig::with_budget(cache_mb << 20));
    config.service.default_deadline = deadline_ms.map(std::time::Duration::from_millis);
    // `--no-store` wins over `--store` so scripts can append it to a
    // fixed flag list to turn persistence off.
    config.service.store_dir = if no_store { None } else { store_dir };
    // The served daemon arms the flight recorder by default (the
    // library default stays off); `--trace-sample 0` turns it off.
    config.service.tracing = (trace_sample > 0).then(|| lalr_service::TraceConfig {
        capacity: trace_capacity,
        sample_every: trace_sample,
    });

    // The epoll front end is the default where the backend exists;
    // `--threaded` selects the thread-per-connection reference.
    // Scripts (and the bin tests) parse the first stderr line as
    // exactly `serving on ADDR`; the front-end detail goes on its own.
    let summary = if threaded || !lalr_net::supported() {
        let daemon = lalr_service::Daemon::start(config).map_err(|e| fail(format!("bind: {e}")))?;
        eprintln!("serving on {}", daemon.addr());
        eprintln!("front end: thread-per-connection");
        daemon.join()
    } else {
        let daemon = lalr_service::EventDaemon::start(config, shards)
            .map_err(|e| fail(format!("bind: {e}")))?;
        eprintln!("serving on {}", daemon.addr());
        eprintln!("front end: {shards} event-loop shard(s)");
        daemon.join()
    };
    let mut out = format!(
        "served {} connection(s), {} request(s)\ndrained {} connection(s) at shutdown, aborted {}\n",
        summary.connections, summary.requests, summary.drained, summary.aborted
    );
    if summary.restarts > 0 {
        let _ = writeln!(out, "recovered {} shard crash(es)", summary.restarts);
    }
    Ok(out)
}

/// `lalrgen store`: offline maintenance of a persistent artifact store
/// directory — list entries, verify checksums, and garbage-collect by
/// LRU age.
fn cmd_store(args: &[String]) -> Result<String, CliError> {
    const ACTIONS: &str = "ls, verify, gc";
    const FLAGS: &str = "--dir, --max-age-s";
    let action = args.first().map(String::as_str).unwrap_or("");
    let rest = args.get(1..).unwrap_or(&[]);
    let mut dir: Option<std::path::PathBuf> = None;
    let mut max_age_s: u64 = 0;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--dir" => dir = Some(std::path::PathBuf::from(flag_value(rest, i, "--dir")?)),
            "--max-age-s" => {
                max_age_s = num_flag(flag_value(rest, i, "--max-age-s")?, "--max-age-s")?
            }
            other => {
                return Err(fail(format!(
                    "unknown flag {other:?} for store (available: {FLAGS})"
                )))
            }
        }
        i += 2;
    }
    match action {
        "ls" | "verify" | "gc" => {}
        "" => {
            return Err(fail(format!(
                "store needs an action (available: {ACTIONS})"
            )))
        }
        other => {
            return Err(fail(format!(
                "unknown store action {other:?} (available: {ACTIONS})"
            )))
        }
    }
    let dir = dir.ok_or_else(|| fail("store needs --dir <path>"))?;
    let store = lalr_store::Store::open(&dir).map_err(|e| fail(format!("open {dir:?}: {e}")))?;
    match action {
        "ls" => {
            let mut entries = store.ls().map_err(|e| fail(format!("ls: {e}")))?;
            entries.sort_by_key(|e| e.fingerprint);
            let mut out = String::new();
            let mut total = 0u64;
            for e in &entries {
                total += e.bytes;
                out.push_str(&format!(
                    "{:016x}  {:>10} bytes  age {:>6}s\n",
                    e.fingerprint,
                    e.bytes,
                    e.age.as_secs()
                ));
            }
            out.push_str(&format!(
                "{} artifact(s), {} byte(s) total\n",
                entries.len(),
                total
            ));
            Ok(out)
        }
        "verify" => {
            let report = store.verify().map_err(|e| fail(format!("verify: {e}")))?;
            let mut out = format!("{} ok, {} corrupt\n", report.ok, report.corrupt.len());
            for (path, reason) in &report.corrupt {
                out.push_str(&format!("corrupt {}: {reason}\n", path.display()));
            }
            if report.corrupt.is_empty() {
                Ok(out)
            } else {
                Err(CliError {
                    message: out,
                    code: 1,
                })
            }
        }
        "gc" => {
            let report = store
                .gc(std::time::Duration::from_secs(max_age_s))
                .map_err(|e| fail(format!("gc: {e}")))?;
            Ok(format!(
                "removed {} artifact(s) older than {}s, kept {}, swept {} temp file(s), reclaimed {} byte(s)\n",
                report.removed, max_age_s, report.kept, report.temps, report.reclaimed_bytes
            ))
        }
        _ => unreachable!("action validated above"),
    }
}

/// `lalrgen client`: one request to a running daemon; prints the raw
/// response line. Errors from the daemon exit nonzero with the line on
/// stderr.
fn cmd_client(args: &[String]) -> Result<String, CliError> {
    const OPS: &str = "compile, classify, table, parse, stats, metrics, trace, health, shutdown";
    const FLAGS: &str = "--addr, --input, --recover, --compressed, --deadline-ms, --timeout-ms, \
                         --retries, --backoff-ms";
    let mut addr = DEFAULT_ADDR.to_string();
    let mut inputs: Vec<String> = Vec::new();
    let mut recover = false;
    let mut compressed = false;
    let mut deadline_ms: Option<u64> = None;
    let mut timeout_ms: u64 = 30_000;
    let mut retries: u32 = 0;
    let mut backoff_ms: u64 = 50;
    let mut positional: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = flag_value(args, i, "--addr")?.to_string();
                i += 2;
            }
            "--input" => {
                inputs.push(flag_value(args, i, "--input")?.to_string());
                i += 2;
            }
            "--recover" => {
                recover = true;
                i += 1;
            }
            "--compressed" => {
                compressed = true;
                i += 1;
            }
            "--deadline-ms" => {
                deadline_ms = Some(num_flag(
                    flag_value(args, i, "--deadline-ms")?,
                    "--deadline-ms",
                )?);
                i += 2;
            }
            "--timeout-ms" => {
                timeout_ms = num_flag(flag_value(args, i, "--timeout-ms")?, "--timeout-ms")?;
                i += 2;
            }
            "--retries" => {
                retries = num_flag(flag_value(args, i, "--retries")?, "--retries")?;
                i += 2;
            }
            "--backoff-ms" => {
                backoff_ms = num_flag(flag_value(args, i, "--backoff-ms")?, "--backoff-ms")?;
                i += 2;
            }
            other if other.starts_with("--") => {
                return Err(fail(format!(
                    "unknown flag {other:?} for client (available: {FLAGS})"
                )))
            }
            other => {
                positional.push(other);
                i += 1;
            }
        }
    }
    let op = *positional
        .first()
        .ok_or_else(|| fail(format!("client needs an op (available: {OPS})")))?;
    let request = match op {
        "stats" => lalr_service::Request::Stats,
        "metrics" => lalr_service::Request::Metrics,
        "trace" => lalr_service::Request::Trace(lalr_service::TraceFilter::default()),
        "health" => lalr_service::Request::Health,
        "shutdown" => lalr_service::Request::Shutdown,
        "compile" | "classify" | "table" | "parse" => {
            let name = positional.get(1).ok_or_else(|| {
                fail(format!(
                    "client {op} needs a grammar (file path or corpus name)"
                ))
            })?;
            let (grammar, format) = grammar_text(name)?;
            match op {
                "compile" => lalr_service::Request::Compile { grammar, format },
                "classify" => lalr_service::Request::Classify { grammar, format },
                "table" => lalr_service::Request::Table {
                    grammar,
                    format,
                    compressed,
                },
                _ => {
                    if inputs.is_empty() {
                        return Err(fail(
                            "client parse needs at least one --input \"tok tok …\" \
                             (repeat --input to batch documents)",
                        ));
                    }
                    lalr_service::Request::Parse {
                        target: lalr_service::ParseTarget::Text { grammar, format },
                        documents: inputs.clone(),
                        recover,
                        sync: Vec::new(),
                    }
                }
            }
        }
        other => {
            return Err(fail(format!(
                "unknown client op {other:?} (available: {OPS})"
            )))
        }
    };
    // The retry policy's seed is fixed: a given invocation's backoff
    // schedule is reproducible, and the per-attempt jitter still spreads
    // concurrent clients started with different --backoff-ms values.
    let policy = lalr_service::RetryPolicy {
        retries,
        backoff: std::time::Duration::from_millis(backoff_ms),
        ..lalr_service::RetryPolicy::default()
    };
    let reply = lalr_service::call_with_retry(
        &addr,
        &request,
        deadline_ms.map(std::time::Duration::from_millis),
        std::time::Duration::from_millis(timeout_ms),
        &policy,
        &lalr_service::FaultInjector::disabled(),
    )
    .map_err(|e| fail(e.to_string()))?;
    if reply.is_ok() {
        if matches!(request, lalr_service::Request::Metrics) {
            // The interesting payload is the exposition text itself;
            // print it verbatim so the output is directly scrapeable.
            let text = reply
                .value
                .get("text")
                .and_then(serde_json::Value::as_str)
                .ok_or_else(|| fail("malformed metrics response: no \"text\" field"))?;
            return Ok(text.to_string());
        }
        Ok(format!("{}\n", reply.raw))
    } else {
        Err(CliError {
            message: reply.raw,
            code: 1,
        })
    }
}

/// `lalrgen stats`: shorthand for `client stats`. With `--metrics` it
/// asks for the Prometheus-style text exposition instead of the JSON
/// snapshot (shorthand for `client metrics`).
fn cmd_stats(args: &[String]) -> Result<String, CliError> {
    let mut metrics = false;
    let mut forwarded = Vec::with_capacity(args.len() + 1);
    for arg in args {
        if arg == "--metrics" {
            metrics = true;
        } else {
            forwarded.push(arg.clone());
        }
    }
    forwarded.insert(0, if metrics { "metrics" } else { "stats" }.to_string());
    cmd_client(&forwarded)
}

/// One call to a daemon returning the parsed JSON response, shared by
/// the `trace` and `top` front ends.
fn daemon_call(
    addr: &str,
    request: &lalr_service::Request,
    timeout_ms: u64,
) -> Result<serde_json::Value, CliError> {
    let reply = lalr_service::call_with_retry(
        addr,
        request,
        None,
        std::time::Duration::from_millis(timeout_ms),
        &lalr_service::RetryPolicy::default(),
        &lalr_service::FaultInjector::disabled(),
    )
    .map_err(|e| fail(e.to_string()))?;
    if !reply.is_ok() {
        return Err(CliError {
            message: reply.raw,
            code: 1,
        });
    }
    Ok(reply.value)
}

fn json_u64(v: &serde_json::Value, key: &str) -> u64 {
    v.get(key).and_then(serde_json::Value::as_u64).unwrap_or(0)
}

/// `lalrgen trace`: dumps a daemon's request flight recorder. Each
/// sampled request prints one stage-breakdown line
/// (`queue/cache/compile/parse/write` microseconds plus their share of
/// the recorded total); `--chrome-out FILE` additionally renders the
/// traces as Chrome trace JSON, one timeline row per request.
fn cmd_trace(args: &[String]) -> Result<String, CliError> {
    const FLAGS: &str = "--addr, --op, --errors, --slow-us, --limit, --chrome-out, --timeout-ms";
    let mut addr = DEFAULT_ADDR.to_string();
    let mut filter = lalr_service::TraceFilter::default();
    let mut chrome_out: Option<String> = None;
    let mut timeout_ms: u64 = 30_000;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--errors" => {
                filter.errors_only = true;
                i += 1;
                continue;
            }
            "--addr" => addr = flag_value(args, i, "--addr")?.to_string(),
            "--op" => filter.op = Some(flag_value(args, i, "--op")?.to_string()),
            "--slow-us" => {
                filter.slow_us = Some(num_flag(flag_value(args, i, "--slow-us")?, "--slow-us")?)
            }
            "--limit" => filter.limit = Some(num_flag(flag_value(args, i, "--limit")?, "--limit")?),
            "--chrome-out" => chrome_out = Some(flag_value(args, i, "--chrome-out")?.to_string()),
            "--timeout-ms" => {
                timeout_ms = num_flag(flag_value(args, i, "--timeout-ms")?, "--timeout-ms")?
            }
            other => {
                return Err(fail(format!(
                    "unknown flag {other:?} for trace (available: {FLAGS})"
                )))
            }
        }
        i += 2;
    }
    let value = daemon_call(&addr, &lalr_service::Request::Trace(filter), timeout_ms)?;
    if !value
        .get("enabled")
        .and_then(serde_json::Value::as_bool)
        .unwrap_or(false)
    {
        return Ok(
            "tracing disabled (serve with --trace-sample N, N > 0, to arm the recorder)\n"
                .to_string(),
        );
    }
    let traces = value
        .get("traces")
        .and_then(serde_json::Value::as_arr)
        .unwrap_or(&[]);
    let mut out = format!(
        "request traces: {} shown, {} recorded (capacity {}, sampling 1-in-{})\n",
        traces.len(),
        json_u64(&value, "recorded"),
        json_u64(&value, "capacity"),
        json_u64(&value, "sample_every"),
    );
    let mut events: Vec<lalr_obs::SpanEvent> = Vec::new();
    let mut total_ns = 0u64;
    for t in traces {
        let op = t
            .get("op")
            .and_then(serde_json::Value::as_str)
            .unwrap_or("unknown");
        let error = t
            .get("error")
            .and_then(serde_json::Value::as_bool)
            .unwrap_or(false);
        let total_us = json_u64(t, "total_us");
        let sum_us = json_u64(t, "stage_sum_us");
        let share = if total_us > 0 {
            100.0 * sum_us as f64 / total_us as f64
        } else {
            0.0
        };
        let stages = t.get("stages_us");
        let stage_us = |name: &str| stages.map_or(0, |s| json_u64(s, name));
        let _ = writeln!(
            out,
            "#{} {op} shard={} {} total={total_us}us stages queue={} cache={} compile={} \
             parse={} write={} sum={sum_us}us ({share:.1}% of total)",
            json_u64(t, "id"),
            json_u64(t, "shard"),
            if error { "err" } else { "ok" },
            stage_us("queue"),
            stage_us("cache"),
            stage_us("compile"),
            stage_us("parse"),
            stage_us("write"),
        );
        // One Chrome timeline row per request: its stages laid
        // back-to-back from t=0 (rows are independent tids).
        let tid = json_u64(t, "id") as usize;
        let mut cursor = 0u64;
        for name in lalr_obs::STAGE_NAMES {
            let dur_ns = stage_us(name) * 1_000;
            if dur_ns > 0 {
                events.push(lalr_obs::SpanEvent {
                    name,
                    tid,
                    depth: 0,
                    start_ns: cursor,
                    dur_ns,
                    allocs: 0,
                    bytes: 0,
                });
                cursor += dur_ns;
            }
        }
        total_ns = total_ns.max(cursor);
    }
    if let Some(path) = chrome_out {
        let report = lalr_obs::PhaseReport {
            phases: Vec::new(),
            nested: Vec::new(),
            counters: vec![("traces", traces.len() as u64)],
            events,
            total_ns,
        };
        std::fs::write(&path, report.to_chrome_trace())
            .map_err(|e| fail(format!("cannot write {path:?}: {e}")))?;
        let _ = writeln!(out, "chrome trace: {path} ({} events)", report.events.len());
    }
    Ok(out)
}

/// Renders one `top` frame from a daemon's `stats` response: request
/// throughput, per-shard event-loop telemetry, and tracing stage totals.
fn top_frame(addr: &str, value: &serde_json::Value) -> String {
    let mut out = format!(
        "lalrgen top — {addr}\nrequests {}  errors {}  shed {}  queue {}/{}  workers {}  uptime {:.1}s\n",
        json_u64(value, "requests"),
        json_u64(value, "errors"),
        json_u64(value, "shed"),
        json_u64(value, "queue_depth"),
        json_u64(value, "queue_limit"),
        json_u64(value, "workers"),
        json_u64(value, "uptime_ms") as f64 / 1_000.0,
    );
    if let Some(health) = value.get("health") {
        let state = health
            .get("state")
            .and_then(serde_json::Value::as_str)
            .unwrap_or("unknown");
        let rejects = health.get("admission_rejects");
        let _ = writeln!(
            out,
            "health {state}  degraded-transitions {}  shard-restarts {}  \
             admission-rejects {}  peer-quota {}  rate-limit {}/s",
            json_u64(health, "degraded_transitions"),
            json_u64(health, "shard_restarts"),
            rejects.map_or(0, |r| json_u64(r, "total")),
            json_u64(health, "max_connections_per_peer"),
            json_u64(health, "rate_limit_per_sec"),
        );
    }
    if let Some(by_op) = value.get("by_op").and_then(serde_json::Value::as_obj) {
        let errors = value.get("errors_by_op");
        let _ = writeln!(out, "{:<10} {:>10} {:>8}", "op", "requests", "errors");
        for (op, count) in by_op {
            let n = count.as_u64().unwrap_or(0);
            if n == 0 {
                continue;
            }
            let e = errors.map_or(0, |e| json_u64(e, op));
            let _ = writeln!(out, "{op:<10} {n:>10} {e:>8}");
        }
    }
    if let Some(shards) = value.get("shards").and_then(serde_json::Value::as_arr) {
        let _ = writeln!(
            out,
            "{:<6} {:>6} {:>8} {:>12} {:>10} {:>8} {:>7} {:>7}",
            "shard", "conns", "accepts", "epoll_waits", "wait_ms", "events", "inbox", "timers"
        );
        for sh in shards {
            let _ = writeln!(
                out,
                "{:<6} {:>6} {:>8} {:>12} {:>10.1} {:>8} {:>7} {:>7}",
                json_u64(sh, "shard"),
                json_u64(sh, "connections"),
                json_u64(sh, "accepts"),
                json_u64(sh, "epoll_waits"),
                json_u64(sh, "epoll_wait_us") as f64 / 1_000.0,
                json_u64(sh, "events"),
                json_u64(sh, "inbox_items"),
                json_u64(sh, "timer_fires"),
            );
        }
    }
    if let Some(tracing) = value.get("tracing") {
        let _ = writeln!(
            out,
            "tracing: {} sampled (1-in-{}, capacity {})",
            json_u64(tracing, "sampled"),
            json_u64(tracing, "sample_every"),
            json_u64(tracing, "capacity"),
        );
        if let Some(stages) = tracing.get("stage_us") {
            let _ = writeln!(
                out,
                "stage us totals: queue={} cache={} compile={} parse={} write={}",
                json_u64(stages, "queue"),
                json_u64(stages, "cache"),
                json_u64(stages, "compile"),
                json_u64(stages, "parse"),
                json_u64(stages, "write"),
            );
        }
    }
    out
}

/// `lalrgen top`: a live terminal view of a running daemon, refreshed
/// from its `stats` op. With `--iterations N` it polls N times and
/// returns the concatenated frames (scriptable/testable); without it,
/// it redraws in place every `--interval-ms` until interrupted.
fn cmd_top(args: &[String]) -> Result<String, CliError> {
    const FLAGS: &str = "--addr, --interval-ms, --iterations, --timeout-ms";
    let mut addr = DEFAULT_ADDR.to_string();
    let mut interval_ms: u64 = 1_000;
    let mut iterations: u64 = 0;
    let mut timeout_ms: u64 = 5_000;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = flag_value(args, i, "--addr")?.to_string(),
            "--interval-ms" => {
                interval_ms = num_flag(flag_value(args, i, "--interval-ms")?, "--interval-ms")?
            }
            "--iterations" => {
                iterations = num_flag(flag_value(args, i, "--iterations")?, "--iterations")?
            }
            "--timeout-ms" => {
                timeout_ms = num_flag(flag_value(args, i, "--timeout-ms")?, "--timeout-ms")?
            }
            other => {
                return Err(fail(format!(
                    "unknown flag {other:?} for top (available: {FLAGS})"
                )))
            }
        }
        i += 2;
    }
    let mut frames = String::new();
    let mut polled = 0u64;
    loop {
        let value = daemon_call(&addr, &lalr_service::Request::Stats, timeout_ms)?;
        let frame = top_frame(&addr, &value);
        polled += 1;
        if iterations == 0 {
            // Live mode: clear and redraw in place, forever.
            print!("\x1b[2J\x1b[H{frame}");
            let _ = std::io::Write::flush(&mut std::io::stdout());
        } else {
            frames.push_str(&frame);
            if polled >= iterations {
                return Ok(frames);
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_strs(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&v)
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run_strs(&[]).unwrap().contains("usage"));
        assert!(run_strs(&["help"]).unwrap().contains("usage"));
        let err = run_strs(&["frobnicate"]).unwrap_err();
        assert_eq!(err.code, 2);
        // The error itself enumerates what *is* available.
        assert!(
            err.message.contains("available: analyze,"),
            "{}",
            err.message
        );
        assert!(err.message.contains("serve"), "{}", err.message);
    }

    #[test]
    fn unknown_flags_list_the_available_ones() {
        let err = run_strs(&["parse", "expr", "1", "--wat", "x"]).unwrap_err();
        assert!(
            err.message.contains("available: --number"),
            "{}",
            err.message
        );
        let err = run_strs(&["serve", "--wat"]).unwrap_err();
        assert!(err.message.contains("available: --addr"), "{}", err.message);
        // The persistence and front-end flags are advertised too.
        for flag in ["--store", "--no-store", "--shards", "--threaded"] {
            assert!(err.message.contains(flag), "{flag}: {}", err.message);
        }
        let err = run_strs(&["client", "compile", "expr", "--wat"]).unwrap_err();
        assert!(err.message.contains("available: --addr"), "{}", err.message);
        let err = run_strs(&["store", "ls", "--wat"]).unwrap_err();
        assert!(err.message.contains("available: --dir"), "{}", err.message);
        let err = run_strs(&["trace", "--wat"]).unwrap_err();
        assert!(err.message.contains("--chrome-out"), "{}", err.message);
        let err = run_strs(&["top", "--wat"]).unwrap_err();
        assert!(err.message.contains("--interval-ms"), "{}", err.message);
        // The serve tracing knobs are advertised.
        let err = run_strs(&["serve", "--wat"]).unwrap_err();
        for flag in ["--trace-sample", "--trace-capacity"] {
            assert!(err.message.contains(flag), "{flag}: {}", err.message);
        }
        // The admission-control knobs are advertised.
        for flag in [
            "--max-conn-per-peer",
            "--rate-limit",
            "--rate-burst",
            "--write-budget-ms",
            "--reject-timeout-ms",
        ] {
            assert!(err.message.contains(flag), "{flag}: {}", err.message);
        }
        // The client op list includes the health probe.
        let err = run_strs(&["client", "frobnicate"]).unwrap_err();
        assert!(err.message.contains("health"), "{}", err.message);
    }

    #[test]
    fn store_subcommand_validates_arguments() {
        let err = run_strs(&["store"]).unwrap_err();
        assert!(err.message.contains("available: ls"), "{}", err.message);
        let err = run_strs(&["store", "frobnicate"]).unwrap_err();
        assert!(err.message.contains("available: ls"), "{}", err.message);
        let err = run_strs(&["store", "ls"]).unwrap_err();
        assert!(err.message.contains("--dir"), "{}", err.message);
    }

    #[test]
    fn store_subcommand_lists_verifies_and_gcs() {
        let dir = std::env::temp_dir().join(format!(
            "lalr-cli-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_arg = dir.to_string_lossy().into_owned();

        // Populate the store through a real service compile.
        let service = lalr_service::Service::new(lalr_service::ServiceConfig {
            store_dir: Some(dir.clone()),
            ..lalr_service::ServiceConfig::default()
        });
        assert!(service
            .call(
                lalr_service::Request::Compile {
                    grammar: "e : e \"+\" t | t ; t : \"x\" ;".to_string(),
                    format: lalr_service::GrammarFormat::Native,
                },
                None,
            )
            .is_ok());
        service.shutdown();

        let out = run_strs(&["store", "ls", "--dir", &dir_arg]).unwrap();
        assert!(out.contains("1 artifact(s)"), "{out}");
        let out = run_strs(&["store", "verify", "--dir", &dir_arg]).unwrap();
        assert!(out.contains("1 ok, 0 corrupt"), "{out}");

        // A young artifact survives an aged GC…
        let out = run_strs(&["store", "gc", "--dir", &dir_arg, "--max-age-s", "3600"]).unwrap();
        assert!(out.contains("removed 0"), "{out}");
        assert!(out.contains("kept 1"), "{out}");

        // …corruption is detected with a nonzero exit…
        let artifact = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().ends_with(".lalr"))
            .unwrap()
            .path();
        let mut bytes = std::fs::read(&artifact).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&artifact, bytes).unwrap();
        let err = run_strs(&["store", "verify", "--dir", &dir_arg]).unwrap_err();
        assert!(err.message.contains("1 corrupt"), "{}", err.message);

        // …and an age-0 GC clears the directory.
        let out = run_strs(&["store", "gc", "--dir", &dir_arg, "--max-age-s", "0"]).unwrap();
        assert!(out.contains("removed 1"), "{out}");
        let out = run_strs(&["store", "ls", "--dir", &dir_arg]).unwrap();
        assert!(out.contains("0 artifact(s)"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn client_validates_op_and_arguments() {
        let err = run_strs(&["client"]).unwrap_err();
        assert!(
            err.message.contains("available: compile"),
            "{}",
            err.message
        );
        let err = run_strs(&["client", "frobnicate"]).unwrap_err();
        assert!(
            err.message.contains("available: compile"),
            "{}",
            err.message
        );
        let err = run_strs(&["client", "compile"]).unwrap_err();
        assert!(err.message.contains("needs a grammar"), "{}", err.message);
        let err = run_strs(&["client", "parse", "expr"]).unwrap_err();
        assert!(err.message.contains("--input"), "{}", err.message);
        let err = run_strs(&["serve", "--cache-mb", "many"]).unwrap_err();
        assert!(err.message.contains("bad value"), "{}", err.message);
    }

    #[test]
    fn client_without_a_daemon_reports_io_error() {
        // Nothing listens on this port; the client must fail cleanly.
        let err = run_strs(&[
            "client",
            "stats",
            "--addr",
            "127.0.0.1:1",
            "--timeout-ms",
            "300",
        ])
        .unwrap_err();
        assert!(err.message.contains("127.0.0.1:1"), "{}", err.message);
    }

    #[test]
    fn classify_corpus_grammar() {
        let out = run_strs(&["classify", "lalr_not_slr"]).unwrap();
        assert!(out.contains("LALR(1)"), "{out}");
    }

    #[test]
    fn threads_flag_does_not_change_output() {
        for cmd in ["analyze", "classify", "states", "table"] {
            let seq = run_strs(&[cmd, "expr"]).unwrap();
            let par = run_strs(&[cmd, "expr", "--threads", "4"]).unwrap();
            assert_eq!(seq, par, "{cmd} output must not depend on --threads");
        }
        // The flag is position-independent and validated.
        let out = run_strs(&["--threads", "2", "classify", "expr"]).unwrap();
        assert!(out.contains("SLR(1)"), "{out}");
        let err = run_strs(&["classify", "expr", "--threads", "lots"]).unwrap_err();
        assert!(err.message.contains("bad thread count"), "{}", err.message);
        let err = run_strs(&["classify", "expr", "--threads"]).unwrap_err();
        assert!(err.message.contains("needs a count"), "{}", err.message);
    }

    #[test]
    fn profile_reports_phases_with_high_wall_coverage() {
        // A large corpus grammar, so per-span overhead and inter-phase
        // gaps are negligible next to the real pipeline work.
        let out = run_strs(&["profile", "c_subset"]).unwrap();
        for phase in [
            "parse",
            "lr0.build",
            "relations.build",
            "digraph.reads",
            "digraph.includes",
            "la.union",
        ] {
            assert!(out.contains(phase), "missing phase {phase} in:\n{out}");
        }
        let coverage: f64 = out
            .split("phase coverage ")
            .nth(1)
            .and_then(|rest| rest.split('%').next())
            .expect("coverage line present")
            .parse()
            .expect("coverage is a number");
        assert!(
            (90.0..=100.5).contains(&coverage),
            "phase sum must be within 10% of wall time, got {coverage}%:\n{out}"
        );
    }

    #[test]
    fn profile_trace_out_writes_valid_chrome_json() {
        let dir = std::env::temp_dir().join("lalr_cli_profile");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let out = run_strs(&["profile", "expr", "--trace-out", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("chrome trace:"), "{out}");

        let text = std::fs::read_to_string(&path).unwrap();
        let doc = serde_json::from_str(&text).expect("trace round-trips through serde_json");
        let events = doc
            .get("traceEvents")
            .and_then(serde_json::Value::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let mut complete = 0usize;
        for event in events {
            let ph = event.get("ph").and_then(serde_json::Value::as_str);
            assert!(matches!(ph, Some("X" | "I")), "unexpected phase {ph:?}");
            assert!(event
                .get("name")
                .and_then(serde_json::Value::as_str)
                .is_some());
            assert!(event.get("ts").is_some());
            if ph == Some("X") {
                complete += 1;
                assert!(event.get("dur").is_some());
            }
        }
        assert!(complete >= 4, "expected pipeline spans, got {complete}");
    }

    #[test]
    fn profile_rejects_unknown_flags() {
        let err = run_strs(&["profile", "expr", "--wat"]).unwrap_err();
        assert!(
            err.message.contains("available: --trace-out"),
            "{}",
            err.message
        );
    }

    #[test]
    fn analyze_reports_digraph_traversal_stats() {
        let out = run_strs(&["analyze", "expr"]).unwrap();
        assert!(out.contains("digraph reads"), "{out}");
        assert!(out.contains("digraph includes"), "{out}");
        assert!(out.contains("max-scc"), "{out}");
    }

    #[test]
    fn analyze_reports_row_layout_and_la_histogram() {
        // expr has 6 terminals (incl. $) → the fixed one-word lane.
        let out = run_strs(&["analyze", "expr"]).unwrap();
        assert!(out.contains("row layout: fixed-64"), "{out}");
        assert!(out.contains("la-set terminal counts:"), "{out}");
        // c_subset has 82 → the two-word lane.
        let wide = run_strs(&["analyze", "c_subset"]).unwrap();
        assert!(wide.contains("row layout: fixed-128"), "{wide}");
    }

    #[test]
    fn profile_reports_kernel_counter_section() {
        let out = run_strs(&["profile", "expr"]).unwrap();
        assert!(out.contains("kernel counters"), "{out}");
        assert!(out.contains("kernel.la.batch_ops"), "{out}");
        assert!(out.contains("kernel.row_words = 1"), "{out}");
    }

    #[test]
    fn stats_metrics_prints_the_daemon_exposition() {
        let config = lalr_service::DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            ..lalr_service::DaemonConfig::default()
        };
        let daemon = lalr_service::Daemon::start(config).expect("bind loopback");
        let addr = daemon.addr().to_string();

        let out = run_strs(&["client", "compile", "expr", "--addr", &addr]).unwrap();
        assert!(out.contains("\"ok\":true"), "{out}");

        let metrics = run_strs(&["stats", "--metrics", "--addr", &addr]).unwrap();
        assert!(
            metrics.contains("# TYPE lalr_requests_total counter"),
            "{metrics}"
        );
        assert!(metrics.contains("lalr_requests_total 1"), "{metrics}");
        assert!(
            metrics.contains("lalr_requests_by_op_total{op=\"compile\"} 1"),
            "{metrics}"
        );
        assert!(
            metrics.contains("lalr_phase_calls_total{phase=\"lr0.build\"} 1"),
            "{metrics}"
        );

        let _ = run_strs(&["client", "shutdown", "--addr", &addr]);
        daemon.join();
    }

    #[test]
    fn trace_and_top_render_daemon_telemetry() {
        let mut config = lalr_service::DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            ..lalr_service::DaemonConfig::default()
        };
        config.service.tracing = Some(lalr_service::TraceConfig::default());
        let daemon = lalr_service::Daemon::start(config).expect("bind loopback");
        let addr = daemon.addr().to_string();
        run_strs(&["client", "compile", "expr", "--addr", &addr]).unwrap();

        // The dump shows the recorder header and one stage-breakdown
        // line per sampled request.
        let out = run_strs(&["trace", "--addr", &addr]).unwrap();
        assert!(out.contains("request traces: 1 shown"), "{out}");
        assert!(out.contains("stages queue="), "{out}");
        assert!(out.contains("compile shard=0"), "{out}");

        // Filters pass through; a bogus op is rejected server-side.
        let out = run_strs(&["trace", "--addr", &addr, "--op", "parse"]).unwrap();
        assert!(out.contains("0 shown"), "{out}");
        let err = run_strs(&["trace", "--addr", &addr, "--op", "frobnicate"]).unwrap_err();
        assert!(err.message.contains("unknown op filter"), "{}", err.message);

        // --chrome-out writes loadable trace-event JSON.
        let dir = std::env::temp_dir().join("lalr_cli_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("requests.json");
        let out = run_strs(&[
            "trace",
            "--addr",
            &addr,
            "--chrome-out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("chrome trace:"), "{out}");
        let doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let events = doc
            .get("traceEvents")
            .and_then(serde_json::Value::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty(), "at least one stage span");

        // One `top` frame renders throughput and the tracing section.
        let frame = run_strs(&["top", "--addr", &addr, "--iterations", "1"]).unwrap();
        assert!(frame.contains("lalrgen top"), "{frame}");
        assert!(frame.contains("requests "), "{frame}");
        assert!(frame.contains("tracing: "), "{frame}");
        assert!(frame.contains("stage us totals:"), "{frame}");

        let _ = run_strs(&["client", "shutdown", "--addr", &addr]);
        daemon.join();
    }

    #[test]
    fn health_op_reports_state_and_quotas() {
        let config = lalr_service::DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections_per_peer: 7,
            rate_limit_per_sec: 100,
            ..lalr_service::DaemonConfig::default()
        };
        let daemon = lalr_service::Daemon::start(config).expect("bind loopback");
        let addr = daemon.addr().to_string();

        let out = run_strs(&["client", "health", "--addr", &addr]).unwrap();
        assert!(out.contains("\"state\":\"ok\""), "{out}");
        assert!(out.contains("\"max_connections_per_peer\":7"), "{out}");
        assert!(out.contains("\"rate_limit_per_sec\":100"), "{out}");
        assert!(out.contains("\"admission_rejects\""), "{out}");

        // The top frame surfaces the same health line.
        let frame = run_strs(&["top", "--addr", &addr, "--iterations", "1"]).unwrap();
        assert!(frame.contains("health ok"), "{frame}");
        assert!(frame.contains("peer-quota 7"), "{frame}");
        assert!(frame.contains("rate-limit 100/s"), "{frame}");

        let _ = run_strs(&["client", "shutdown", "--addr", &addr]);
        daemon.join();
    }

    #[test]
    fn trace_reports_disabled_recorder() {
        // Library-default daemon: no tracing config, so the op answers
        // with enabled=false and the CLI says how to arm it.
        let daemon = lalr_service::Daemon::start(lalr_service::DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            ..lalr_service::DaemonConfig::default()
        })
        .expect("bind loopback");
        let addr = daemon.addr().to_string();
        let out = run_strs(&["trace", "--addr", &addr]).unwrap();
        assert!(out.contains("tracing disabled"), "{out}");
        let _ = run_strs(&["client", "shutdown", "--addr", &addr]);
        daemon.join();
    }

    #[test]
    fn analyze_reports_conflicts() {
        let out = run_strs(&["analyze", "dangling_else"]).unwrap();
        assert!(out.contains("conflicts: 1"), "{out}");
        assert!(out.contains("shift/reduce"), "{out}");
    }

    #[test]
    fn explain_names_the_viable_prefix() {
        let out = run_strs(&["explain", "dangling_else"]).unwrap();
        assert!(out.contains("viable prefix"), "{out}");
        assert!(out.contains("shift:"), "{out}");
        let out = run_strs(&["explain", "expr"]).unwrap();
        assert!(out.contains("no LALR(1) conflicts"), "{out}");
    }

    #[test]
    fn states_listing_is_youtput_like() {
        let out = run_strs(&["states", "expr"]).unwrap();
        assert!(out.contains("state 0"));
        assert!(out.contains("reduce"));
        assert!(out.contains("shift"));
        assert!(out.contains("goto"));
        // The f -> NUM reduction carries its LALR look-ahead set.
        assert!(
            out.contains("[$ + * )]") || out.contains("[$ + * ( )]"),
            "{out}"
        );
    }

    #[test]
    fn table_prints_matrix() {
        let out = run_strs(&["table", "expr"]).unwrap();
        assert!(out.contains("state"));
        assert!(out.contains("acc"));
    }

    #[test]
    fn dot_output() {
        let out = run_strs(&["dot", "expr"]).unwrap();
        assert!(out.starts_with("digraph lr0 {"));
    }

    #[test]
    fn codegen_output() {
        let out = run_strs(&["codegen", "expr", "mymod"]).unwrap();
        assert!(out.contains("@generated"));
        assert!(out.contains("mymod"));
    }

    #[test]
    fn sentences_output() {
        let out = run_strs(&["sentences", "expr", "3"]).unwrap();
        assert_eq!(out.lines().count(), 3);
        assert!(out.contains("NUM"));
    }

    #[test]
    fn parse_accepts_and_rejects() {
        let out = run_strs(&["parse", "expr", "1 + 2", "--number", "NUM"]).unwrap();
        assert!(out.starts_with("accepted"));
        let err = run_strs(&["parse", "expr", "1 +", "--number", "NUM"]).unwrap_err();
        assert!(err.message.contains("rejected"));
    }

    #[test]
    fn missing_grammar_file() {
        let err = run_strs(&["analyze", "/no/such/file.g"]).unwrap_err();
        assert!(err.message.contains("cannot read"));
    }

    #[test]
    fn check_command_runs_case_files() {
        let dir = std::env::temp_dir().join("lalr_cli_check");
        std::fs::create_dir_all(&dir).unwrap();
        let cases = dir.join("expr.cases");
        std::fs::write(
            &cases,
            "# expression cases\n+ NUM + NUM\n+ ( NUM )\n- NUM +\n- + NUM\n",
        )
        .unwrap();
        let out = run_strs(&["check", "expr", cases.to_str().unwrap()]).unwrap();
        assert!(out.contains("4 cases, 0 failures"), "{out}");

        std::fs::write(&cases, "+ NUM +\n").unwrap();
        let err = run_strs(&["check", "expr", cases.to_str().unwrap()]).unwrap_err();
        assert!(err.message.contains("1 failures"), "{}", err.message);
    }

    #[test]
    fn yacc_files_are_loaded_by_extension() {
        let dir = std::env::temp_dir().join("lalr_cli_yacc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("calc.y");
        std::fs::write(
            &path,
            "%token NUM\n%left '+'\n%%\nexpr : expr '+' expr { act(); } | NUM ;\n",
        )
        .unwrap();
        let out = run_strs(&["classify", path.to_str().unwrap()]).unwrap();
        assert!(!out.contains("not LR(1)") || out.contains("LR"), "{out}");
        // Precedence makes the ambiguity resolvable; analysis still runs.
        let out = run_strs(&["table", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("resolved"), "{out}");
    }

    #[test]
    fn grammar_from_file_path() {
        let dir = std::env::temp_dir().join("lalr_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.g");
        std::fs::write(&path, "s : \"a\" ;").unwrap();
        let out = run_strs(&["classify", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("LR(0)"), "{out}");
    }
}
