//! The DeRemer–Pennello LALR(1) look-ahead computation.
//!
//! This crate is the reproduction of the paper's contribution. Given a
//! grammar and its LR(0) automaton it computes, for every reduction point
//! `(q, A → ω)`, the LALR(1) look-ahead set
//!
//! ```text
//! LA(q, A → ω) = { t : S ⇒+ α A t z  and  α ω accesses q }
//! ```
//!
//! via the paper's four relations and two runs of the Digraph algorithm:
//!
//! 1. `DR(p, A)` — terminals readable directly after the transition
//!    ([`Relations`]).
//! 2. `Read = Digraph(reads, DR)` where `(p,A) reads (r,C)` iff
//!    `p --A--> r --C-->` and `C` nullable.
//! 3. `Follow = Digraph(includes, Read)` where `(p,A) includes (p',B)` iff
//!    `B → β A γ`, `γ ⇒* ε`, `p' --β--> p`.
//! 4. `LA(q, A→ω) = ⋃ { Follow(p,A) : (q, A→ω) lookback (p,A) }`.
//!
//! The entry point is [`LalrAnalysis::compute`]. Baselines reproduced for
//! the paper's evaluation: [`slr_lookaheads`] (SLR(1)), [`NqlalrAnalysis`]
//! (the unsound "not quite LALR" shortcut the paper warns about),
//! [`propagation_lookaheads`] (the yacc/ASU spontaneous-and-propagate
//! technique) and, over in `lalr-automata`, canonical-LR(1)-then-merge.
//!
//! # Examples
//!
//! ```
//! use lalr_automata::Lr0Automaton;
//! use lalr_core::LalrAnalysis;
//! use lalr_grammar::parse_grammar;
//!
//! let g = parse_grammar("e : e \"+\" t | t ; t : \"x\" ;")?;
//! let lr0 = Lr0Automaton::build(&g);
//! let lalr = LalrAnalysis::compute(&g, &lr0);
//! assert!(lalr.conflicts(&g, &lr0).is_empty()); // the grammar is LALR(1)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod conflicts;
mod engine;
mod explain;
mod lookahead;
mod nqlalr;
mod parallel;
mod propagation;
mod relations;
mod selective;
mod slr;

pub use classify::{
    classify, classify_from, classify_recorded, classify_with, GrammarClass, MethodAdequacy,
};
pub use conflicts::{find_conflicts, Conflict, ConflictKind};
pub use engine::LalrAnalysis;
pub use explain::{explain_conflict, viable_prefix};
pub use lalr_bitset::{dispatch_name as kernel_dispatch_name, simd_compiled, RowLayout};
pub use lalr_digraph::DigraphStats;
pub use lookahead::LookaheadSets;
pub use nqlalr::NqlalrAnalysis;
pub use parallel::Parallelism;
pub use propagation::{propagation_lookaheads, propagation_recorded};
pub use relations::{RelationStats, Relations};
pub use selective::{inadequate_states, selective_lookaheads, SelectiveAnalysis};
pub use slr::slr_lookaheads;
