//! Per-shard event-loop telemetry.
//!
//! Each epoll shard owns one [`ShardCounters`] and bumps it inline from
//! its event loop (no contention: every counter has exactly one
//! writer). The [`crate::Service`] holds the full set so the `stats`
//! op and the metrics exposition can fold per-shard numbers in without
//! reaching into the daemon.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters for one epoll shard. Gauges and totals are written by
/// the shard thread and read by stats snapshots.
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// `epoll_wait` calls made by the shard's event loop.
    pub epoll_waits: AtomicU64,
    /// Nanoseconds spent blocked in `epoll_wait`.
    pub epoll_wait_ns: AtomicU64,
    /// Readiness events dispatched.
    pub events: AtomicU64,
    /// Connections accepted (or dealt to) this shard.
    pub accepts: AtomicU64,
    /// Completions and dealt connections drained from the inbox.
    pub inbox_items: AtomicU64,
    /// Timer-wheel expirations handled.
    pub timer_fires: AtomicU64,
    /// Connections currently open on this shard (a gauge).
    pub connections: AtomicU64,
}

impl ShardCounters {
    /// Copies the counters into an owned snapshot for shard `shard`.
    pub fn snapshot(&self, shard: usize) -> ShardStatsSnapshot {
        ShardStatsSnapshot {
            shard,
            epoll_waits: self.epoll_waits.load(Ordering::Relaxed),
            epoll_wait_us: self.epoll_wait_ns.load(Ordering::Relaxed) / 1_000,
            events: self.events.load(Ordering::Relaxed),
            accepts: self.accepts.load(Ordering::Relaxed),
            inbox_items: self.inbox_items.load(Ordering::Relaxed),
            timer_fires: self.timer_fires.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
        }
    }
}

/// One shard's telemetry in a [`crate::StatsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStatsSnapshot {
    /// Shard index (0 owns the listener).
    pub shard: usize,
    /// `epoll_wait` calls made by the shard's event loop.
    pub epoll_waits: u64,
    /// Microseconds spent blocked in `epoll_wait`.
    pub epoll_wait_us: u64,
    /// Readiness events dispatched.
    pub events: u64,
    /// Connections accepted (or dealt to) this shard.
    pub accepts: u64,
    /// Completions and dealt connections drained from the inbox.
    pub inbox_items: u64,
    /// Timer-wheel expirations handled.
    pub timer_fires: u64,
    /// Connections open on this shard at snapshot time (a gauge).
    pub connections: u64,
}
