//! **lalr** — an LALR(1) parser-generator toolkit built around the
//! DeRemer–Pennello look-ahead algorithm.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`grammar`] | `lalr-grammar` | grammars, text format, FIRST/FOLLOW |
//! | [`automata`] | `lalr-automata` | LR(0)/LR(1) machines, LALR-by-merge |
//! | [`core`] | `lalr-core` | the DeRemer–Pennello algorithm + baselines |
//! | [`tables`] | `lalr-tables` | ACTION/GOTO tables, precedence, compression |
//! | [`runtime`] | `lalr-runtime` | lexer, LR driver, parse trees, recovery |
//! | [`corpus`] | `lalr-corpus` | evaluation grammars and generators |
//! | [`bitset`] | `lalr-bitset` | bit-set/bit-matrix substrate |
//! | [`digraph`] | `lalr-digraph` | the Digraph algorithm, SCCs |
//!
//! # Quickstart
//!
//! ```
//! use lalr::prelude::*;
//!
//! // 1. A grammar, in yacc-like notation.
//! let grammar = parse_grammar(
//!     r#"
//!     expr : expr "+" term | term ;
//!     term : term "*" atom | atom ;
//!     atom : "(" expr ")" | NUM ;
//!     "#,
//! )?;
//!
//! // 2. LR(0) machine + DeRemer-Pennello look-aheads.
//! let lr0 = Lr0Automaton::build(&grammar);
//! let analysis = LalrAnalysis::compute(&grammar, &lr0);
//! assert!(analysis.conflicts(&grammar, &lr0).is_empty());
//!
//! // 3. Tables, lexer, parse.
//! let table = build_table(&grammar, &lr0, analysis.lookaheads(), TableOptions::default());
//! let lexer = Lexer::for_table(&table).number("NUM").build();
//! let tree = Parser::new(&table).parse(lexer.tokenize("1 + 2 * 3")?)?;
//! assert_eq!(tree.leaf_count(), 5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lalr_automata as automata;
pub use lalr_bitset as bitset;
pub use lalr_codegen as codegen;
pub use lalr_core as core;
pub use lalr_corpus as corpus;
pub use lalr_digraph as digraph;
pub use lalr_grammar as grammar;
pub use lalr_obs as obs;
pub use lalr_runtime as runtime;
pub use lalr_tables as tables;

/// The names most programs need, in one import.
pub mod prelude {
    pub use lalr_automata::{Lr0Automaton, Lr1Automaton};
    pub use lalr_core::{
        classify, find_conflicts, slr_lookaheads, GrammarClass, LalrAnalysis, LookaheadSets,
    };
    pub use lalr_grammar::{parse_grammar, Grammar, GrammarBuilder, GrammarStats};
    pub use lalr_runtime::{Lexer, ParseTree, Parser, Token};
    pub use lalr_tables::{build_table, CompressedTable, ParseTable, TableOptions};
}
