//! Golden regression test: the complete LALR(1) look-ahead table for the
//! dragon-book expression grammar, state by state, against hand-checked
//! values (ASU 2nd ed., example 4.54 territory).

use lalr_automata::{Lr0Automaton, StateId};
use lalr_core::LalrAnalysis;
use lalr_grammar::{parse_grammar, Grammar, Symbol, Terminal};
use std::collections::BTreeMap;

const SRC: &str = "e : e \"+\" t | t ; t : t \"*\" f | f ; f : \"(\" e \")\" | \"id\" ;";

/// Walks a symbol string (by names) from the start state.
fn state_of(g: &Grammar, lr0: &Lr0Automaton, names: &[&str]) -> StateId {
    let symbols: Vec<Symbol> = names
        .iter()
        .map(|n| g.symbol_by_name(n).unwrap_or_else(|| panic!("symbol {n}")))
        .collect();
    lr0.walk(StateId::START, &symbols).expect("viable prefix")
}

fn la_names(g: &Grammar, set: lalr_bitset::BitSetRef<'_>) -> Vec<String> {
    set.iter()
        .map(|i| g.terminal_name(Terminal::new(i)).to_string())
        .collect()
}

#[test]
fn dragon_grammar_complete_lookahead_table() {
    let g = parse_grammar(SRC).unwrap();
    let lr0 = Lr0Automaton::build(&g);
    let la = LalrAnalysis::compute(&g, &lr0).into_lookaheads();

    // (viable prefix, production display) -> expected LA, hand-checked.
    // FOLLOW(e) = {$, +, )}, FOLLOW(t) = FOLLOW(f) = {$, +, *, )}; this
    // grammar is SLR so per-state LA == FOLLOW of the LHS everywhere.
    let expectations: Vec<(Vec<&str>, &str, Vec<&str>)> = vec![
        (vec!["t"], "e -> t", vec!["$", "+", ")"]),
        (vec!["f"], "t -> f", vec!["$", "+", "*", ")"]),
        (vec!["id"], "f -> id", vec!["$", "+", "*", ")"]),
        (vec!["e", "+", "t"], "e -> e + t", vec!["$", "+", ")"]),
        (vec!["t", "*", "f"], "t -> t * f", vec!["$", "+", "*", ")"]),
        (vec!["(", "e", ")"], "f -> ( e )", vec!["$", "+", "*", ")"]),
        (vec!["e"], "<start> -> e", vec!["$"]),
    ];

    for (prefix, prod_text, mut expected) in expectations {
        let q = state_of(&g, &lr0, &prefix);
        // Find the production by its rendering.
        let (pid, _) = g
            .iter_productions()
            .find(|(id, _)| g.production_to_string(*id) == prod_text)
            .unwrap_or_else(|| panic!("production {prod_text}"));
        let set = la
            .la(q, pid)
            .unwrap_or_else(|| panic!("LA for {prod_text} at {prefix:?}"));
        let mut got = la_names(&g, set);
        got.sort();
        expected.sort();
        assert_eq!(got, expected, "LA({prefix:?}, {prod_text})");
    }
}

#[test]
fn dragon_grammar_lookahead_totals() {
    // A coarse checksum: number of reduction points and total LA bits are
    // stable across refactorings.
    let g = parse_grammar(SRC).unwrap();
    let lr0 = Lr0Automaton::build(&g);
    let la = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
    let by_prod: BTreeMap<usize, usize> = la
        .iter()
        .map(|((_, p), set)| (p.index(), set.count()))
        .fold(BTreeMap::new(), |mut m, (p, c)| {
            *m.entry(p).or_default() += c;
            m
        });
    // prod 0 (<start> -> e): {$} once = 1
    // prod 1 (e -> e + t): {$,+,)} once = 3;  prod 2 (e -> t): 3
    // prod 3 (t -> t * f): 4;  prod 4 (t -> f): 4
    // prod 5 (f -> ( e )): 4;  prod 6 (f -> id): 4
    let expected: BTreeMap<usize, usize> = [(0, 1), (1, 3), (2, 3), (3, 4), (4, 4), (5, 4), (6, 4)]
        .into_iter()
        .collect();
    assert_eq!(by_prod, expected);
    assert_eq!(la.reduction_count(), 7);
    assert_eq!(la.total_bits(), 23);
}
