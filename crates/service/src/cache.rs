//! The content-addressed artifact cache.
//!
//! Keying: requests are normalized ([`crate::fingerprint::normalize`]),
//! FxHash-fingerprinted, and *confirmed* by full-text comparison — the
//! hash-then-confirm idiom of the LR(0) kernel interner, so a fingerprint
//! collision costs one string compare, never a wrong artifact.
//!
//! Concurrency: the cache is sharded by fingerprint and each shard has
//! its own mutex, so compiles of *different* grammars never serialize on
//! a cache lock. Duplicate in-flight compiles of the *same* grammar
//! coalesce: the first requester becomes the leader and runs the
//! pipeline (outside any lock); the rest block on a condvar and receive
//! the leader's `Arc` (or its error).
//!
//! Eviction: least-recently-used under a byte budget, split evenly
//! across shards. Each artifact is accounted at its
//! [`CompiledArtifact::approx_bytes`]; an artifact bigger than a whole
//! shard budget is returned to the caller but never inserted, so a
//! shard's resident bytes never exceed its budget.
//!
//! Persistence: with [`CacheConfig::store`] set, the cache grows a
//! read-through/write-through disk tier. A memory miss consults the
//! [`lalr_store::Store`] before compiling — a verified disk artifact is
//! deserialized and committed as if compiled ([`CacheOutcome::Loaded`]),
//! a corrupt file is counted and recompiled, and a fresh compile is
//! published back to disk (best-effort; publish failures never fail the
//! request). The store is keyed by the same normalized-text fingerprint
//! and confirmed by the full key text it carries, so the
//! hash-then-confirm discipline holds across restarts too.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use lalr_chaos::{Fault, FaultInjector};
use lalr_store::{Loaded, Store};
use rustc_hash::FxHashMap;

use crate::artifact::CompiledArtifact;
use crate::error::ServiceError;
use crate::fingerprint::{fx_fingerprint, normalize};

/// Hash function used to fingerprint normalized grammar texts.
///
/// Swappable (see [`CacheConfig::fingerprinter`]) so tests can force
/// collisions and exercise the full-text confirmation path.
pub type Fingerprinter = fn(&str) -> u64;

/// Cache tuning knobs.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total byte budget across all shards.
    pub byte_budget: usize,
    /// Number of lock stripes (clamped to at least 1).
    pub shards: usize,
    /// The fingerprint hash; defaults to FxHash64.
    pub fingerprinter: Fingerprinter,
    /// Fault injector for the `cache.storm` failpoint (an eviction storm
    /// after a commit). `crate::Service::new` overwrites this with its
    /// own injector so one plan drives the whole stack; arm it directly
    /// only when exercising a bare cache.
    pub faults: FaultInjector,
    /// Optional persistent tier. `None` (the default) keeps the cache
    /// purely in-memory with pre-store counting semantics.
    pub store: Option<Arc<Store>>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            byte_budget: 64 << 20,
            shards: 8,
            fingerprinter: fx_fingerprint,
            faults: FaultInjector::disabled(),
            store: None,
        }
    }
}

impl CacheConfig {
    /// A budget in bytes with default sharding.
    pub fn with_budget(byte_budget: usize) -> Self {
        CacheConfig {
            byte_budget,
            ..CacheConfig::default()
        }
    }
}

/// Counter snapshot (all counters are cumulative since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from a committed entry.
    pub hits: u64,
    /// Lookups that found nothing and became compile leaders.
    pub misses: u64,
    /// Lookups that joined an in-flight compile instead of starting one.
    pub coalesced: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Pipeline runs actually executed (`misses` minus compiles that
    /// failed before insertion equals committed entries over time).
    pub compiles: u64,
    /// Memory misses answered by a verified disk artifact instead of a
    /// compile (zero unless a store is configured).
    pub store_hits: u64,
    /// Memory misses the disk tier could not answer either.
    pub store_misses: u64,
    /// Fresh compiles published to the disk tier.
    pub store_writes: u64,
    /// Disk artifacts rejected (checksum/format failure) and recompiled.
    pub store_corrupt: u64,
    /// Committed entries right now.
    pub entries: usize,
    /// Resident accounted bytes right now.
    pub bytes: usize,
}

impl CacheStats {
    /// Hit rate over all cache lookups (hits + misses + coalesced).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.coalesced;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// How a lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from a committed entry.
    Hit,
    /// This call ran the compile pipeline.
    Compiled,
    /// Joined another thread's in-flight compile.
    Coalesced,
    /// Deserialized from the persistent store tier — no pipeline run.
    Loaded,
}

struct Entry {
    text: Arc<str>,
    artifact: Arc<CompiledArtifact>,
    bytes: usize,
    last_used: u64,
}

struct InFlight {
    text: Arc<str>,
    state: Mutex<Option<Result<Arc<CompiledArtifact>, ServiceError>>>,
    done: Condvar,
}

#[derive(Default)]
struct Shard {
    entries: FxHashMap<u64, Vec<Entry>>,
    in_flight: FxHashMap<u64, Vec<Arc<InFlight>>>,
    bytes: usize,
}

/// The content-addressed, lock-striped, coalescing LRU artifact cache.
pub struct ArtifactCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    fingerprinter: Fingerprinter,
    faults: FaultInjector,
    store: Option<Arc<Store>>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    compiles: AtomicU64,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    store_writes: AtomicU64,
    store_corrupt: AtomicU64,
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("ArtifactCache")
            .field("shards", &self.shards.len())
            .field("shard_budget", &self.shard_budget)
            .field("stats", &s)
            .finish()
    }
}

impl ArtifactCache {
    /// Creates a cache from the configuration.
    pub fn new(config: CacheConfig) -> ArtifactCache {
        let shards = config.shards.max(1);
        ArtifactCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: config.byte_budget / shards,
            fingerprinter: config.fingerprinter,
            faults: config.faults,
            store: config.store,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            store_misses: AtomicU64::new(0),
            store_writes: AtomicU64::new(0),
            store_corrupt: AtomicU64::new(0),
        }
    }

    /// The persistent tier, if one is configured.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    fn shard_of(&self, fp: u64) -> &Mutex<Shard> {
        // The bucket key is the full fingerprint; routing on the high bits
        // keeps shard choice independent of any low-bit bucket structure.
        &self.shards[(fp >> 32) as usize % self.shards.len()]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up `text` (normalizing first), compiling via `compile` on a
    /// miss. Concurrent calls with the same normalized text coalesce onto
    /// one `compile` run; its result (success or failure) is delivered to
    /// every caller.
    pub fn get_or_compile<F>(
        &self,
        text: &str,
        compile: F,
    ) -> (Result<Arc<CompiledArtifact>, ServiceError>, CacheOutcome)
    where
        F: FnOnce(&str, u64) -> Result<CompiledArtifact, ServiceError>,
    {
        let normalized = normalize(text);
        let fp = (self.fingerprinter)(&normalized);

        // Phase 1: under the shard lock, find a committed entry, join an
        // in-flight compile, or become the leader.
        let flight: Arc<InFlight>;
        {
            let mut shard = self.shard_of(fp).lock().expect("cache shard poisoned");
            if let Some(bucket) = shard.entries.get_mut(&fp) {
                // Confirm by full text: a colliding fingerprint must not
                // serve another grammar's artifact.
                let tick = self.next_tick();
                if let Some(e) = bucket.iter_mut().find(|e| *e.text == normalized) {
                    e.last_used = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (Ok(Arc::clone(&e.artifact)), CacheOutcome::Hit);
                }
            }
            if let Some(waiting) = shard.in_flight.get(&fp) {
                if let Some(f) = waiting.iter().find(|f| *f.text == normalized) {
                    let f = Arc::clone(f);
                    drop(shard);
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    return (Self::wait(&f), CacheOutcome::Coalesced);
                }
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            flight = Arc::new(InFlight {
                text: Arc::from(normalized.as_str()),
                state: Mutex::new(None),
                done: Condvar::new(),
            });
            shard
                .in_flight
                .entry(fp)
                .or_default()
                .push(Arc::clone(&flight));
        }

        // Phase 2: leader resolves the miss outside every lock — first
        // against the disk tier (a verified artifact skips the pipeline
        // entirely), then by compiling. The `catch_unwind` is
        // load-bearing: if `compile` panics (a pipeline bug, or the
        // `service.compile` failpoint's injected panic) and the panic
        // escaped here, Phase 3 would never run, the in-flight slot would
        // never resolve, and every coalesced waiter — plus all future
        // requests for this grammar, which would join the dead flight —
        // would block on the condvar forever.
        let mut outcome = CacheOutcome::Compiled;
        let mut loaded = None;
        if let Some(store) = &self.store {
            match store.load(fp, Some(&normalized)) {
                Loaded::Hit(record) => {
                    self.store_hits.fetch_add(1, Ordering::Relaxed);
                    loaded = Some(Arc::new(CompiledArtifact::from_record(*record)));
                    outcome = CacheOutcome::Loaded;
                }
                Loaded::Corrupt => {
                    self.store_corrupt.fetch_add(1, Ordering::Relaxed);
                }
                Loaded::Miss => {
                    self.store_misses.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let result = match loaded {
            Some(artifact) => Ok(artifact),
            None => {
                self.compiles.fetch_add(1, Ordering::Relaxed);
                let result = panic::catch_unwind(AssertUnwindSafe(|| compile(&normalized, fp)))
                    .unwrap_or_else(|payload| Err(ServiceError::from_panic(payload.as_ref())))
                    .map(Arc::new);
                // Write-through: persist the fresh compile so the next
                // process starts warm. A publish failure (disk full, the
                // `store.write` failpoint) costs only the persistence —
                // the request itself still succeeds.
                if let (Some(store), Ok(artifact)) = (&self.store, &result) {
                    if store.publish(&artifact.to_record(&normalized)).is_ok() {
                        self.store_writes.fetch_add(1, Ordering::Relaxed);
                    }
                }
                result
            }
        };

        // Phase 3: commit, wake waiters, evict.
        {
            let mut shard = self.shard_of(fp).lock().expect("cache shard poisoned");
            if let Some(waiting) = shard.in_flight.get_mut(&fp) {
                waiting.retain(|f| !Arc::ptr_eq(f, &flight));
                if waiting.is_empty() {
                    shard.in_flight.remove(&fp);
                }
            }
            if let Ok(artifact) = &result {
                let bytes = artifact.approx_bytes();
                if bytes <= self.shard_budget {
                    let tick = self.next_tick();
                    shard.entries.entry(fp).or_default().push(Entry {
                        text: Arc::clone(&flight.text),
                        artifact: Arc::clone(artifact),
                        bytes,
                        last_used: tick,
                    });
                    shard.bytes += bytes;
                    self.evict(&mut shard, tick);
                }
            }
        }
        *flight.state.lock().expect("in-flight slot poisoned") = Some(result.clone());
        flight.done.notify_all();

        // The eviction-storm failpoint: drop every committed entry, as if
        // a budget collapse evicted the working set. Checked outside the
        // shard lock, after waiters were released.
        if let Some(Fault::EvictAll) = self.faults.at("cache.storm") {
            self.evict_all();
        }

        (result, outcome)
    }

    /// Evicts every committed entry (an eviction storm), counting each
    /// one in the `evictions` stat. In-flight compiles are unaffected.
    /// Returns the number of entries dropped.
    pub fn evict_all(&self) -> usize {
        let mut dropped = 0;
        for s in &self.shards {
            let mut shard = s.lock().expect("cache shard poisoned");
            let n = shard.entries.values().map(Vec::len).sum::<usize>();
            shard.entries.clear();
            shard.bytes = 0;
            dropped += n;
        }
        self.evictions.fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    fn wait(flight: &InFlight) -> Result<Arc<CompiledArtifact>, ServiceError> {
        let mut slot = flight.state.lock().expect("in-flight slot poisoned");
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = flight.done.wait(slot).expect("in-flight slot poisoned");
        }
    }

    /// Evicts least-recently-used entries until the shard fits its
    /// budget; the entry stamped `keep_tick` (the one just inserted) is
    /// never evicted by its own insertion.
    fn evict(&self, shard: &mut Shard, keep_tick: u64) {
        while shard.bytes > self.shard_budget {
            let victim = shard
                .entries
                .iter()
                .flat_map(|(fp, bucket)| bucket.iter().map(move |e| (*fp, e.last_used)))
                .filter(|&(_, used)| used != keep_tick)
                .min_by_key(|&(_, used)| used);
            let Some((fp, used)) = victim else { break };
            let bucket = shard.entries.get_mut(&fp).expect("victim bucket exists");
            let idx = bucket
                .iter()
                .position(|e| e.last_used == used)
                .expect("victim entry exists");
            let entry = bucket.swap_remove(idx);
            if bucket.is_empty() {
                shard.entries.remove(&fp);
            }
            shard.bytes -= entry.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Looks up a committed artifact by its fingerprint alone — the
    /// fingerprint-addressed parse path, where the client names the
    /// artifact a prior compile reported instead of resending the text.
    ///
    /// Counts as a hit and refreshes the LRU stamp. On a (2⁻⁶⁴-rare)
    /// bucket collision the entry whose artifact actually carries `fp` is
    /// preferred; `None` means the artifact was never compiled here or
    /// has been evicted since.
    pub fn get_by_fingerprint(&self, fp: u64) -> Option<Arc<CompiledArtifact>> {
        {
            let mut shard = self.shard_of(fp).lock().expect("cache shard poisoned");
            let tick = self.next_tick();
            if let Some(bucket) = shard.entries.get_mut(&fp) {
                if let Some(entry) = bucket.iter_mut().find(|e| e.artifact.fingerprint() == fp) {
                    entry.last_used = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(Arc::clone(&entry.artifact));
                }
            }
        }
        // Evicted (or never compiled here): the disk tier may still have
        // it. No key to confirm against — the fingerprint *is* the name
        // the client was handed — so `load` checks only the record's own
        // embedded fingerprint.
        let store = self.store.as_ref()?;
        match store.load(fp, None) {
            Loaded::Hit(record) => {
                self.store_hits.fetch_add(1, Ordering::Relaxed);
                let text: Arc<str> = Arc::from(record.key.as_str());
                let artifact = Arc::new(CompiledArtifact::from_record(*record));
                let bytes = artifact.approx_bytes();
                let mut shard = self.shard_of(fp).lock().expect("cache shard poisoned");
                let tick = self.next_tick();
                if let Some(bucket) = shard.entries.get_mut(&fp) {
                    // A racing commit (compile or load) beat us; serve it.
                    if let Some(entry) = bucket.iter_mut().find(|e| e.text == text) {
                        entry.last_used = tick;
                        return Some(Arc::clone(&entry.artifact));
                    }
                }
                if bytes <= self.shard_budget {
                    shard.entries.entry(fp).or_default().push(Entry {
                        text,
                        artifact: Arc::clone(&artifact),
                        bytes,
                        last_used: tick,
                    });
                    shard.bytes += bytes;
                    self.evict(&mut shard, tick);
                }
                Some(artifact)
            }
            Loaded::Corrupt => {
                self.store_corrupt.fetch_add(1, Ordering::Relaxed);
                None
            }
            Loaded::Miss => {
                self.store_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Whether a committed entry exists for `text` (no use-stamp update).
    pub fn contains(&self, text: &str) -> bool {
        let normalized = normalize(text);
        let fp = (self.fingerprinter)(&normalized);
        let shard = self.shard_of(fp).lock().expect("cache shard poisoned");
        shard
            .entries
            .get(&fp)
            .is_some_and(|b| b.iter().any(|e| *e.text == normalized))
    }

    /// Committed entry count.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("cache shard poisoned")
                    .entries
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// `true` when no entries are committed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident accounted bytes.
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").bytes)
            .sum()
    }

    /// Drops every committed entry (in-flight compiles are unaffected).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut shard = s.lock().expect("cache shard poisoned");
            shard.entries.clear();
            shard.bytes = 0;
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            store_misses: self.store_misses.load(Ordering::Relaxed),
            store_writes: self.store_writes.load(Ordering::Relaxed),
            store_corrupt: self.store_corrupt.load(Ordering::Relaxed),
            entries: self.len(),
            bytes: self.bytes(),
        }
    }
}
