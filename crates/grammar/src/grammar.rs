//! The immutable [`Grammar`] type.

use crate::parse::Precedence;
use crate::production::{ProdId, Production};
use crate::symbol::{NonTerminal, Symbol, Terminal};

/// An immutable, augmented context-free grammar.
///
/// Invariants (established by [`crate::GrammarBuilder`]):
///
/// * Terminal `0` is the reserved end-of-input marker `$`.
/// * Nonterminal `0` is the reserved augmented start symbol `<start>`.
/// * Production `0` is `<start> → S` where `S` is the user start symbol.
/// * Every symbol referenced by a production exists in the tables.
/// * `$` and `<start>` appear in no user production.
///
/// # Examples
///
/// ```
/// use lalr_grammar::{parse_grammar, Symbol};
///
/// let g = parse_grammar("%start s  s : \"a\" s | ;")?;
/// let start_prod = g.production(lalr_grammar::ProdId::START);
/// assert_eq!(start_prod.rhs(), &[Symbol::NonTerminal(g.start())]);
/// assert_eq!(g.name_of(Symbol::NonTerminal(g.start())), "s");
/// # Ok::<(), lalr_grammar::GrammarError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grammar {
    pub(crate) term_names: Vec<String>,
    pub(crate) nonterm_names: Vec<String>,
    pub(crate) productions: Vec<Production>,
    /// Production ids grouped by LHS nonterminal.
    pub(crate) by_lhs: Vec<Vec<ProdId>>,
    /// The user start symbol (RHS of production 0).
    pub(crate) start: NonTerminal,
    /// Optional precedence/associativity per terminal.
    pub(crate) precedence: Vec<Option<Precedence>>,
}

impl Grammar {
    /// Number of terminals, including the reserved `$`.
    #[inline]
    pub fn terminal_count(&self) -> usize {
        self.term_names.len()
    }

    /// Number of nonterminals, including the reserved `<start>`.
    #[inline]
    pub fn nonterminal_count(&self) -> usize {
        self.nonterm_names.len()
    }

    /// Number of productions, including the augmented start production.
    #[inline]
    pub fn production_count(&self) -> usize {
        self.productions.len()
    }

    /// Total number of grammar symbols (terminals + nonterminals).
    #[inline]
    pub fn symbol_count(&self) -> usize {
        self.terminal_count() + self.nonterminal_count()
    }

    /// The end-of-input terminal `$`.
    #[inline]
    pub fn eof(&self) -> Terminal {
        Terminal::EOF
    }

    /// The augmented start nonterminal `<start>`.
    #[inline]
    pub fn augmented_start(&self) -> NonTerminal {
        NonTerminal::AUGMENTED_START
    }

    /// The user start symbol.
    #[inline]
    pub fn start(&self) -> NonTerminal {
        self.start
    }

    /// The augmented start production `<start> → S`.
    #[inline]
    pub fn start_production(&self) -> &Production {
        &self.productions[0]
    }

    /// All productions, in id order.
    #[inline]
    pub fn productions(&self) -> &[Production] {
        &self.productions
    }

    /// A production by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn production(&self, id: ProdId) -> &Production {
        &self.productions[id.index()]
    }

    /// Iterates over `(id, production)` pairs.
    pub fn iter_productions(&self) -> impl Iterator<Item = (ProdId, &Production)> {
        self.productions
            .iter()
            .enumerate()
            .map(|(i, p)| (ProdId::new(i), p))
    }

    /// The productions whose LHS is `nt`.
    ///
    /// # Panics
    ///
    /// Panics if `nt` is out of range.
    #[inline]
    pub fn productions_of(&self, nt: NonTerminal) -> &[ProdId] {
        &self.by_lhs[nt.index()]
    }

    /// Iterates over all terminals, including `$`.
    pub fn terminals(&self) -> impl Iterator<Item = Terminal> {
        (0..self.terminal_count() as u32).map(Terminal)
    }

    /// Iterates over all nonterminals, including `<start>`.
    pub fn nonterminals(&self) -> impl Iterator<Item = NonTerminal> {
        (0..self.nonterminal_count() as u32).map(NonTerminal)
    }

    /// The display name of a terminal.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[inline]
    pub fn terminal_name(&self, t: Terminal) -> &str {
        &self.term_names[t.index()]
    }

    /// The display name of a nonterminal.
    ///
    /// # Panics
    ///
    /// Panics if `nt` is out of range.
    #[inline]
    pub fn nonterminal_name(&self, nt: NonTerminal) -> &str {
        &self.nonterm_names[nt.index()]
    }

    /// The display name of any symbol.
    ///
    /// # Panics
    ///
    /// Panics if the symbol is out of range.
    pub fn name_of(&self, sym: Symbol) -> &str {
        match sym {
            Symbol::Terminal(t) => self.terminal_name(t),
            Symbol::NonTerminal(n) => self.nonterminal_name(n),
        }
    }

    /// Looks up a terminal by name.
    pub fn terminal_by_name(&self, name: &str) -> Option<Terminal> {
        self.term_names
            .iter()
            .position(|n| n == name)
            .map(|i| Terminal(i as u32))
    }

    /// Looks up a nonterminal by name.
    pub fn nonterminal_by_name(&self, name: &str) -> Option<NonTerminal> {
        self.nonterm_names
            .iter()
            .position(|n| n == name)
            .map(|i| NonTerminal(i as u32))
    }

    /// Looks up any symbol by name (terminals win on a tie, which the
    /// builder prevents anyway).
    pub fn symbol_by_name(&self, name: &str) -> Option<Symbol> {
        self.terminal_by_name(name)
            .map(Symbol::Terminal)
            .or_else(|| self.nonterminal_by_name(name).map(Symbol::NonTerminal))
    }

    /// Declared precedence of a terminal, if any.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[inline]
    pub fn precedence_of(&self, t: Terminal) -> Option<Precedence> {
        self.precedence[t.index()]
    }

    /// Resolved precedence of a production (via `%prec` or its rightmost
    /// terminal).
    pub fn production_precedence(&self, id: ProdId) -> Option<Precedence> {
        self.production(id)
            .precedence_terminal()
            .and_then(|t| self.precedence_of(t))
    }

    /// Sum of right-hand-side lengths over all productions (a standard
    /// grammar size measure, `|G|`).
    pub fn size(&self) -> usize {
        self.productions.iter().map(Production::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_grammar;
    use crate::{NonTerminal, ProdId, Symbol, Terminal};

    fn sample() -> crate::Grammar {
        parse_grammar(
            r#"
            %start e
            e : e "+" t | t ;
            t : "x" ;
            "#,
        )
        .expect("valid grammar")
    }

    #[test]
    fn augmentation_invariants() {
        let g = sample();
        assert_eq!(g.terminal_name(Terminal::EOF), "$");
        assert_eq!(g.nonterminal_name(NonTerminal::AUGMENTED_START), "<start>");
        let p0 = g.start_production();
        assert_eq!(p0.lhs(), NonTerminal::AUGMENTED_START);
        assert_eq!(p0.rhs(), &[Symbol::NonTerminal(g.start())]);
    }

    #[test]
    fn counts_and_lookups() {
        let g = sample();
        assert_eq!(g.terminal_count(), 3);
        assert_eq!(g.nonterminal_count(), 3);
        assert_eq!(g.production_count(), 4);
        assert_eq!(g.symbol_count(), 6);
        assert_eq!(g.terminal_by_name("+"), Some(Terminal::new(1)));
        assert_eq!(g.nonterminal_by_name("e"), Some(g.start()));
        assert_eq!(
            g.symbol_by_name("t"),
            Some(Symbol::NonTerminal(NonTerminal::new(2)))
        );
        assert_eq!(g.symbol_by_name("missing"), None);
    }

    #[test]
    fn productions_grouped_by_lhs() {
        let g = sample();
        let e = g.nonterminal_by_name("e").unwrap();
        assert_eq!(g.productions_of(e).len(), 2);
        for &pid in g.productions_of(e) {
            assert_eq!(g.production(pid).lhs(), e);
        }
        assert_eq!(
            g.productions_of(NonTerminal::AUGMENTED_START),
            &[ProdId::START]
        );
    }

    #[test]
    fn grammar_size_is_rhs_total() {
        let g = sample();
        // <start>→e (1) + e→e+t (3) + e→t (1) + t→x (1) = 6
        assert_eq!(g.size(), 6);
    }

    #[test]
    fn iterators_cover_all_symbols() {
        let g = sample();
        assert_eq!(g.terminals().count(), g.terminal_count());
        assert_eq!(g.nonterminals().count(), g.nonterminal_count());
        assert_eq!(g.iter_productions().count(), g.production_count());
    }
}
