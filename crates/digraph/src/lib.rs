//! Graph machinery for the DeRemer–Pennello LALR(1) look-ahead computation.
//!
//! The heart of the paper is the observation that both
//!
//! * `Read(p, A)  = DR(p, A)  ∪ ⋃ { Read(r, C)   : (p, A) reads (r, C) }` and
//! * `Follow(p,A) = Read(p,A) ∪ ⋃ { Follow(p',B) : (p, A) includes (p', B) }`
//!
//! are instances of one generic problem: given a finite set `X`, a relation
//! `R ⊆ X × X` and an initial set-valued function `F'`, compute the smallest
//! `F` such that `F(x) = F'(x) ∪ ⋃ { F(y) : x R y }`.
//!
//! The paper's **Digraph** algorithm ([`digraph`]) solves this with a single
//! Tarjan-style depth-first traversal that collapses strongly connected
//! components on the fly, performing `O(|X| + |R|)` set unions. This crate
//! provides:
//!
//! * [`Graph`] — a compact adjacency-list digraph.
//! * [`digraph`] / [`digraph_on`] — the paper's algorithm over
//!   [`lalr_bitset::BitMatrix`] rows.
//! * [`naive_closure`] — the quadratic reference implementation (repeated
//!   relaxation until fixpoint) used by the ablation benchmark **E6**.
//! * [`tarjan_scc`] / [`Condensation`] — explicit SCC computation, used for
//!   the relation-structure statistics (figure **E5**) and for detecting
//!   non-trivial `reads` cycles (which prove a grammar not LR(k)).
//!
//! # Examples
//!
//! ```
//! use lalr_bitset::BitMatrix;
//! use lalr_digraph::{digraph, Graph};
//!
//! // F(0) ⊇ {0}; 0 R 1; F(1) ⊇ {1}  ⇒  F(0) = {0,1}, F(1) = {1}
//! let mut g = Graph::new(2);
//! g.add_edge(0, 1);
//! let mut sets = BitMatrix::new(2, 8);
//! sets.set(0, 0);
//! sets.set(1, 1);
//! digraph(&g, &mut sets);
//! assert!(sets.get(0, 1));
//! assert!(!sets.get(1, 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod condensation;
mod graph;
mod levels;
mod naive;
mod tarjan;
mod traversal;

pub use condensation::Condensation;
pub use graph::Graph;
pub use levels::{
    digraph_levels, digraph_levels_recorded, digraph_with_schedule, LevelSchedule, TraversalReport,
};
pub use naive::naive_closure;
pub use tarjan::{tarjan_scc, SccInfo};
pub use traversal::{
    digraph, digraph_counting, digraph_from, digraph_from_on, digraph_on, DigraphStats,
    TraversalCounts, UnionSets,
};
