//! Language-level closure test: every sentence sampled from a grammar must
//! be accepted by the parser generated from that grammar — across the
//! corpus and the synthetic families.

use lalr::corpus::sentences::generate_many;
use lalr::prelude::*;
use lalr::runtime::Token;

fn tokens_for(sentence: &[lalr::grammar::Terminal], grammar: &Grammar) -> Vec<Token> {
    sentence
        .iter()
        .enumerate()
        .map(|(i, &t)| Token::new(t.index() as u32, grammar.terminal_name(t), i))
        .collect()
}

fn check_grammar(name: &str, grammar: &Grammar, samples: usize) {
    let lr0 = Lr0Automaton::build(grammar);
    let analysis = LalrAnalysis::compute(grammar, &lr0);
    if !analysis.conflicts(grammar, &lr0).is_empty() {
        // Default conflict resolution may change the accepted language;
        // the closure property is only guaranteed for conflict-free
        // grammars.
        return;
    }
    let table = build_table(
        grammar,
        &lr0,
        analysis.lookaheads(),
        TableOptions::default(),
    );
    let parser = Parser::new(&table);
    for (i, sentence) in generate_many(grammar, 0xC0FFEE, samples, 40)
        .into_iter()
        .enumerate()
    {
        let toks = tokens_for(&sentence, grammar);
        let n = toks.len();
        let result = parser.parse(toks);
        assert!(
            result.is_ok(),
            "{name}: generated sentence #{i} ({n} tokens) rejected: {result:?}"
        );
        assert_eq!(result.unwrap().leaf_count(), n, "{name}: leaves round-trip");
    }
}

#[test]
fn corpus_sentences_parse() {
    for entry in lalr::corpus::all_entries() {
        check_grammar(entry.name, &entry.grammar(), 30);
    }
}

#[test]
fn synthetic_family_sentences_parse() {
    use lalr::corpus::synthetic;
    check_grammar("ladder6", &synthetic::expr_ladder(6), 30);
    check_grammar("chain12", &synthetic::chain(12), 10);
    check_grammar("nullable5", &synthetic::nullable_blocks(5), 30);
    check_grammar("lists3", &synthetic::nested_lists(3), 30);
}

#[test]
fn random_grammar_sentences_parse_when_conflict_free() {
    use lalr::corpus::synthetic::{random, RandomConfig};
    let mut tested = 0;
    for seed in 0..200u64 {
        let g = random(seed, RandomConfig::default());
        let lr0 = Lr0Automaton::build(&g);
        let analysis = LalrAnalysis::compute(&g, &lr0);
        if analysis.conflicts(&g, &lr0).is_empty() {
            check_grammar(&format!("random{seed}"), &g, 10);
            tested += 1;
        }
    }
    assert!(
        tested >= 10,
        "enough conflict-free random grammars: {tested}"
    );
}
