//! Dense bit-set and bit-matrix types.
//!
//! The DeRemer–Pennello algorithm manipulates many small sets of terminal
//! symbols: direct-read sets, `Read` sets, `Follow` sets and the final
//! look-ahead sets. The paper represents these as machine-word bit vectors so
//! that the unions performed by the Digraph traversal cost a handful of word
//! `OR`s. This crate provides that substrate:
//!
//! * [`BitSet`] — a growable, dense set of `usize` indices.
//! * [`BitMatrix`] — a rectangular array of rows, each a fixed-width bit set,
//!   used for indexed families of sets (one row per nonterminal transition).
//!
//! # Examples
//!
//! ```
//! use lalr_bitset::BitSet;
//!
//! let mut a = BitSet::new(128);
//! a.insert(3);
//! a.insert(70);
//! let mut b = BitSet::new(128);
//! b.insert(70);
//! b.insert(100);
//! a.union_with(&b);
//! assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 70, 100]);
//! ```

// `unsafe` is forbidden everywhere except the explicitly allowed
// `kernels::x86` module, which only exists under the `simd` feature.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

mod atomic;
mod bitset;
mod matrix;
mod refset;
mod shard;

pub mod kernels;

pub use atomic::AtomicBitMatrix;
pub use bitset::{BitSet, Iter};
pub use kernels::{dispatch_name, simd_compiled, tile_rows, RowBuf, RowLayout};
pub use matrix::BitMatrix;
pub use refset::{BitSetRef, RefIter};
pub use shard::RowsMut;

pub(crate) const BITS: usize = usize::BITS as usize;

/// Number of `usize` words needed to hold `bits` bits.
#[inline]
pub(crate) fn words_for(bits: usize) -> usize {
    bits.div_ceil(BITS)
}

#[cfg(test)]
mod tests {
    use super::words_for;

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(usize::BITS as usize), 1);
        assert_eq!(words_for(usize::BITS as usize + 1), 2);
    }
}
