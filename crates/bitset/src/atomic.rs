//! A bit matrix whose words are [`AtomicUsize`], for shared-`&self`
//! mutation from scoped threads.
//!
//! The level-scheduled Digraph traversal needs every worker to *read*
//! arbitrary rows (the successor sets computed in earlier levels) while
//! *writing* the rows it owns in the current level. `&mut`-based sharding
//! cannot express that access pattern, so this type shares the whole
//! matrix immutably and makes every word an atomic.
//!
//! # Memory-ordering discipline
//!
//! All operations use [`Ordering::Relaxed`]. That is sufficient — and this
//! type is only correct — under the external-barrier discipline used by
//! the parallel pipeline:
//!
//! * Cross-thread visibility is established by a synchronization point
//!   *outside* this type (a [`std::sync::Barrier`] wait between levels, or
//!   the join of [`std::thread::scope`]), both of which create the
//!   necessary happens-before edges.
//! * Within one epoch (between two barriers), a row may be written by any
//!   number of threads — `fetch_or` is commutative and monotone, so
//!   concurrent writers converge — but must not be *read* by a thread that
//!   needs its final value. Readers may only read rows finalized in an
//!   earlier epoch.
//!
//! Violating the discipline cannot cause undefined behavior (there are no
//! data races on atomics), only stale reads.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::kernels::{self, RowLayout};
use crate::{words_for, BitMatrix, BITS};

/// A `rows × cols` bit matrix of relaxed [`AtomicUsize`] words.
pub struct AtomicBitMatrix {
    words: Vec<AtomicUsize>,
    rows: usize,
    cols: usize,
    row_words: usize,
}

impl AtomicBitMatrix {
    /// Creates an all-zero matrix of `rows × cols` bits.
    pub fn new(rows: usize, cols: usize) -> Self {
        let row_words = words_for(cols);
        let mut words = Vec::with_capacity(rows * row_words);
        words.resize_with(rows * row_words, AtomicUsize::default);
        AtomicBitMatrix {
            words,
            rows,
            cols,
            row_words,
        }
    }

    /// Copies a plain [`BitMatrix`] into atomic storage.
    pub fn from_matrix(m: &BitMatrix) -> Self {
        let out = AtomicBitMatrix::new(m.rows(), m.cols());
        for row in 0..m.rows() {
            let base = row * out.row_words;
            for (i, &w) in m.row_words(row).iter().enumerate() {
                out.words[base + i].store(w, Ordering::Relaxed);
            }
        }
        out
    }

    /// Unwraps into a plain [`BitMatrix`].
    ///
    /// Consuming `self` proves no other thread still holds a reference, so
    /// the relaxed loads see every prior write.
    pub fn into_matrix(self) -> BitMatrix {
        let words: Vec<usize> = self
            .words
            .into_iter()
            .map(AtomicUsize::into_inner)
            .collect();
        BitMatrix::from_raw(words, self.rows, self.cols)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (universe of each row).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The [`RowLayout`] this matrix's rows dispatch under.
    #[inline]
    pub fn layout(&self) -> RowLayout {
        RowLayout::select(self.cols)
    }

    #[inline]
    fn row_base(&self, row: usize) -> usize {
        assert!(row < self.rows, "row {row} out of range 0..{}", self.rows);
        row * self.row_words
    }

    /// The atomic words of `row`.
    #[inline]
    fn row_slice(&self, row: usize) -> &[AtomicUsize] {
        let base = self.row_base(row);
        &self.words[base..base + self.row_words]
    }

    /// Sets bit `(row, col)`, returning `true` if it was newly set.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    #[inline]
    pub fn set(&self, row: usize, col: usize) -> bool {
        assert!(col < self.cols, "col {col} out of range 0..{}", self.cols);
        let base = self.row_base(row);
        let mask = 1usize << (col % BITS);
        let prev = self.words[base + col / BITS].fetch_or(mask, Ordering::Relaxed);
        prev & mask == 0
    }

    /// Tests bit `(row, col)` (relaxed load; see module docs for when the
    /// value is meaningful).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range. Out-of-range `col` reads as `false`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        if col >= self.cols {
            return false;
        }
        let base = self.row_base(row);
        self.words[base + col / BITS].load(Ordering::Relaxed) & (1usize << (col % BITS)) != 0
    }

    /// ORs an external word slice into `row`; returns `true` if the row
    /// changed.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `src` is shorter than a row.
    pub fn fetch_or_row(&self, row: usize, src: &[usize]) -> bool {
        assert!(
            src.len() >= self.row_words,
            "source slice shorter than a row"
        );
        kernels::fetch_or_atomic(self.row_slice(row), &src[..self.row_words])
    }

    /// `row[dst] |= row[src]`; returns `true` if `dst` changed.
    ///
    /// Reads `src` with relaxed loads, so `src` must be finalized (written
    /// in an earlier epoch) for the result to be its final value. Rows may
    /// coincide (then nothing changes).
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range.
    pub fn union_row_from(&self, dst: usize, src: usize) -> bool {
        if dst == src {
            return false;
        }
        kernels::fetch_or_atomic_rows(self.row_slice(dst), self.row_slice(src))
    }

    /// `row[dst] := row[src]` (relaxed load + store per word).
    ///
    /// Like [`union_row_from`](Self::union_row_from), `src` must be
    /// finalized and `dst` must be owned by the calling thread's epoch.
    /// Rows may coincide (then nothing changes).
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range.
    pub fn copy_row_from(&self, dst: usize, src: usize) {
        if dst == src {
            return;
        }
        kernels::copy_atomic_rows(self.row_slice(dst), self.row_slice(src));
    }

    /// Copies the words of `row` into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `buf` is shorter than a row.
    pub fn read_row_into(&self, row: usize, buf: &mut [usize]) {
        assert!(buf.len() >= self.row_words, "buffer shorter than a row");
        kernels::read_atomic(self.row_slice(row), &mut buf[..self.row_words]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_atomic() {
        let mut m = BitMatrix::new(3, 130);
        m.set(0, 0);
        m.set(1, 64);
        m.set(2, 129);
        let a = AtomicBitMatrix::from_matrix(&m);
        assert!(a.get(1, 64));
        assert!(!a.get(1, 65));
        assert_eq!(a.into_matrix(), m);
    }

    #[test]
    fn set_reports_freshness() {
        let a = AtomicBitMatrix::new(1, 10);
        assert!(a.set(0, 3));
        assert!(!a.set(0, 3));
    }

    #[test]
    fn union_row_from_matches_bitmatrix() {
        let mut m = BitMatrix::new(2, 200);
        m.set(0, 5);
        m.set(1, 150);
        let a = AtomicBitMatrix::from_matrix(&m);
        assert!(a.union_row_from(0, 1));
        assert!(!a.union_row_from(0, 1), "second union is a no-op");
        assert!(!a.union_row_from(1, 1), "self union is a no-op");
        m.union_rows(0, 1);
        assert_eq!(a.into_matrix(), m);
    }

    #[test]
    fn concurrent_fetch_or_converges() {
        let cols = 256;
        let a = AtomicBitMatrix::new(1, cols);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let a = &a;
                scope.spawn(move || {
                    let mut src = BitMatrix::new(1, cols);
                    for c in (t..cols).step_by(4) {
                        src.set(0, c);
                    }
                    a.fetch_or_row(0, src.row_words(0));
                });
            }
        });
        let m = a.into_matrix();
        assert_eq!(m.row_count(0), cols, "all four stripes landed");
    }

    #[test]
    fn read_row_into_copies_words() {
        let a = AtomicBitMatrix::new(2, 70);
        a.set(1, 69);
        let mut buf = vec![0usize; 2];
        a.read_row_into(1, &mut buf);
        assert_eq!(buf[1], 1usize << (69 - usize::BITS as usize));
    }
}
