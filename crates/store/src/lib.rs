//! Content-addressed, versioned on-disk artifact store.
//!
//! DeRemer & Pennello's economics are compile-once/reuse-forever; this
//! crate extends "forever" across process restarts. A [`Store`] is a
//! directory of [`ArtifactRecord`] files keyed by the service's content
//! fingerprint, serialized in a relocatable sectioned binary format
//! (see [`format`]): fixed 64-byte header (magic, format version,
//! total length, fingerprint, FNV-1a payload checksum), a section
//! directory of `(kind, offset, len)` triples, and 8-byte-aligned
//! section bodies — dense ACTION/GOTO arrays land as raw little-endian
//! words, so a memory-mapped load (via [`lalr_net::Mmap`]) slices them
//! straight out of the page cache.
//!
//! Durability is rename-based: publishes write a process-unique temp
//! file, `fsync`, then atomically rename over the final name. A crash
//! at any point leaves either the old artifact or a stale temp file
//! (swept by [`Store::gc`]) — never a half-written file under the
//! final name. Every load re-verifies the checksum, so even bytes torn
//! *after* a successful publish (bit rot, lost sectors, chaos
//! injection) degrade to [`Loaded::Corrupt`] and a recompile, never to
//! a garbage parse table.
//!
//! Failpoints `store.write` (clean error / torn / truncated / garbage
//! publishes) and `store.read` (checksum corruption on the read path)
//! make both failure families deterministically injectable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
mod store;

pub use format::{ArtifactRecord, FormatError, FORMAT_VERSION, MAGIC};
pub use store::{GcReport, Loaded, Store, StoreEntry, VerifyReport};
