//! Interned grammar symbols.

use std::fmt;

/// A terminal symbol, identified by its index in the grammar's terminal
/// table. Index `0` is always the reserved end-of-input marker `$`.
///
/// # Examples
///
/// ```
/// use lalr_grammar::Terminal;
///
/// assert_eq!(Terminal::EOF.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Terminal(pub(crate) u32);

impl Terminal {
    /// The reserved end-of-input terminal `$`.
    pub const EOF: Terminal = Terminal(0);

    /// Creates a terminal id from a raw index.
    ///
    /// Only meaningful for indices that exist in the target grammar.
    #[inline]
    pub fn new(index: usize) -> Self {
        Terminal(index as u32)
    }

    /// The index into the grammar's terminal table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// `true` for the end-of-input marker.
    #[inline]
    pub fn is_eof(self) -> bool {
        self.0 == 0
    }
}

/// A nonterminal symbol, identified by its index in the grammar's
/// nonterminal table. Index `0` is always the reserved augmented start
/// symbol `<start>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NonTerminal(pub(crate) u32);

impl NonTerminal {
    /// The reserved augmented start symbol `<start>`.
    pub const AUGMENTED_START: NonTerminal = NonTerminal(0);

    /// Creates a nonterminal id from a raw index.
    #[inline]
    pub fn new(index: usize) -> Self {
        NonTerminal(index as u32)
    }

    /// The index into the grammar's nonterminal table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// `true` for the augmented start symbol.
    #[inline]
    pub fn is_augmented_start(self) -> bool {
        self.0 == 0
    }
}

/// Either kind of grammar symbol.
///
/// # Examples
///
/// ```
/// use lalr_grammar::{NonTerminal, Symbol, Terminal};
///
/// let s = Symbol::from(Terminal::EOF);
/// assert!(s.is_terminal());
/// assert_eq!(s.terminal(), Some(Terminal::EOF));
/// assert_eq!(Symbol::from(NonTerminal::new(3)).nonterminal(), Some(NonTerminal::new(3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Symbol {
    /// A terminal.
    Terminal(Terminal),
    /// A nonterminal.
    NonTerminal(NonTerminal),
}

impl Symbol {
    /// `true` when this is a terminal.
    #[inline]
    pub fn is_terminal(self) -> bool {
        matches!(self, Symbol::Terminal(_))
    }

    /// `true` when this is a nonterminal.
    #[inline]
    pub fn is_nonterminal(self) -> bool {
        matches!(self, Symbol::NonTerminal(_))
    }

    /// The terminal, if this is one.
    #[inline]
    pub fn terminal(self) -> Option<Terminal> {
        match self {
            Symbol::Terminal(t) => Some(t),
            Symbol::NonTerminal(_) => None,
        }
    }

    /// The nonterminal, if this is one.
    #[inline]
    pub fn nonterminal(self) -> Option<NonTerminal> {
        match self {
            Symbol::NonTerminal(n) => Some(n),
            Symbol::Terminal(_) => None,
        }
    }
}

impl From<Terminal> for Symbol {
    fn from(t: Terminal) -> Symbol {
        Symbol::Terminal(t)
    }
}

impl From<NonTerminal> for Symbol {
    fn from(n: NonTerminal) -> Symbol {
        Symbol::NonTerminal(n)
    }
}

impl fmt::Display for Terminal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for NonTerminal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Symbol::Terminal(t) => t.fmt(f),
            Symbol::NonTerminal(n) => n.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eof_is_index_zero() {
        assert!(Terminal::EOF.is_eof());
        assert!(!Terminal::new(1).is_eof());
        assert!(NonTerminal::AUGMENTED_START.is_augmented_start());
    }

    #[test]
    fn symbol_projections() {
        let t: Symbol = Terminal::new(2).into();
        let n: Symbol = NonTerminal::new(5).into();
        assert!(t.is_terminal() && !t.is_nonterminal());
        assert!(n.is_nonterminal() && !n.is_terminal());
        assert_eq!(t.terminal(), Some(Terminal::new(2)));
        assert_eq!(t.nonterminal(), None);
        assert_eq!(n.nonterminal(), Some(NonTerminal::new(5)));
        assert_eq!(n.terminal(), None);
    }

    #[test]
    fn ordering_is_total_within_kind() {
        assert!(Terminal::new(1) < Terminal::new(2));
        assert!(NonTerminal::new(0) < NonTerminal::new(9));
    }
}
