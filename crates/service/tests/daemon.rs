//! Loopback tests of the TCP daemon: protocol round trips, error
//! replies, stats, and graceful in-band shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use lalr_service::client::{self, ClientReply};
use lalr_service::{Daemon, DaemonConfig, GrammarFormat, Request};

use serde_json::Value;

const GRAMMAR: &str = "e : e \"+\" t | t ; t : \"x\" ;";

fn start_daemon() -> Daemon {
    let config = DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        ..DaemonConfig::default()
    };
    Daemon::start(config).expect("bind loopback")
}

fn call(daemon: &Daemon, request: &Request) -> ClientReply {
    client::call(
        &daemon.addr().to_string(),
        request,
        None,
        Duration::from_secs(30),
    )
    .expect("daemon reachable")
}

fn compile_request() -> Request {
    Request::Compile {
        grammar: GRAMMAR.to_string(),
        format: GrammarFormat::Native,
    }
}

#[test]
fn daemon_compiles_caches_reports_stats_and_shuts_down() {
    let daemon = start_daemon();

    let cold = call(&daemon, &compile_request());
    assert!(cold.is_ok(), "{}", cold.raw);
    assert_eq!(
        cold.value.get("cached").and_then(Value::as_bool),
        Some(false)
    );
    let fp = cold
        .value
        .get("fingerprint")
        .and_then(Value::as_str)
        .expect("fingerprint present")
        .to_string();

    let warm = call(&daemon, &compile_request());
    assert_eq!(
        warm.value.get("cached").and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(
        warm.value.get("fingerprint").and_then(Value::as_str),
        Some(fp.as_str())
    );

    let stats = call(&daemon, &Request::Stats);
    assert!(stats.is_ok(), "{}", stats.raw);
    assert!(
        stats.value.get("requests").and_then(Value::as_u64) >= Some(2),
        "{}",
        stats.raw
    );
    let cache = stats.value.get("cache").expect("cache stats present");
    assert!(cache.get("hits").and_then(Value::as_u64) >= Some(1));
    // The persistent-store counters are always reported, and stay zero
    // when no store directory is configured.
    for key in [
        "store_hits",
        "store_misses",
        "store_writes",
        "store_corrupt",
    ] {
        assert_eq!(
            cache.get(key).and_then(Value::as_u64),
            Some(0),
            "{key}: {}",
            stats.raw
        );
    }

    let bye = call(&daemon, &Request::Shutdown);
    assert!(bye.is_ok(), "{}", bye.raw);
    let summary = daemon.join();
    assert!(summary.connections >= 4, "{summary:?}");
    assert!(summary.requests >= 4, "{summary:?}");
}

#[test]
fn malformed_lines_get_structured_errors_and_keep_the_connection() {
    let daemon = start_daemon();
    let stream = TcpStream::connect(daemon.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    // Broken JSON → bad_request, connection stays usable.
    writeln!(writer, "{{not json").unwrap();
    reader.read_line(&mut line).unwrap();
    let v: Value = serde_json::from_str(line.trim_end()).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));

    // Unknown op → the error names the available ops.
    line.clear();
    writeln!(writer, "{{\"op\":\"frobnicate\"}}").unwrap();
    reader.read_line(&mut line).unwrap();
    let v: Value = serde_json::from_str(line.trim_end()).unwrap();
    let msg = v
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Value::as_str)
        .unwrap();
    assert!(msg.contains("available: compile"), "{msg}");

    // A bad grammar is an application error, not a transport one.
    line.clear();
    writeln!(writer, "{{\"op\":\"compile\",\"grammar\":\"e : oops\"}}").unwrap();
    reader.read_line(&mut line).unwrap();
    let v: Value = serde_json::from_str(line.trim_end()).unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str),
        Some("bad_grammar"),
        "{line}"
    );

    // And the same connection still serves a good request afterwards.
    line.clear();
    writeln!(
        writer,
        "{}",
        lalr_service::protocol::request_to_line(&compile_request(), None)
    )
    .unwrap();
    reader.read_line(&mut line).unwrap();
    let v: Value = serde_json::from_str(line.trim_end()).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{line}");

    // Close the socket first so the connection thread sees EOF and the
    // daemon can join promptly.
    drop(writer);
    drop(reader);
    daemon.stop();
    daemon.join();
}

#[test]
fn oversized_request_lines_are_rejected() {
    let config = DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        max_line_bytes: 256,
        ..DaemonConfig::default()
    };
    let daemon = Daemon::start(config).unwrap();
    let stream = TcpStream::connect(daemon.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    let huge = format!(
        "{{\"op\":\"compile\",\"grammar\":\"{}\"}}",
        "x".repeat(4096)
    );
    writeln!(writer, "{huge}").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v: Value = serde_json::from_str(line.trim_end()).unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str),
        Some("too_large"),
        "{line}"
    );

    drop(writer);
    drop(reader);
    daemon.stop();
    daemon.join();
}

#[test]
fn shutdown_drains_idle_connections_promptly() {
    use std::time::Instant;
    // A long idle read timeout: before the drain logic, joining the
    // daemon could block this long for a silent connection.
    let config = DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        read_timeout: Duration::from_secs(30),
        drain_deadline: Duration::from_secs(5),
        ..DaemonConfig::default()
    };
    let daemon = Daemon::start(config).unwrap();

    // Two idle connections (no request in flight) plus one that already
    // completed a request and is now idle between requests.
    let idle_a = TcpStream::connect(daemon.addr()).unwrap();
    let idle_b = TcpStream::connect(daemon.addr()).unwrap();
    let worked = call(&daemon, &compile_request());
    assert!(worked.is_ok(), "{}", worked.raw);
    // Let the accept loop pick both idle connections up.
    std::thread::sleep(Duration::from_millis(100));

    let started = Instant::now();
    daemon.stop();
    let summary = daemon.join();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "join took {:?} — idle connections were waited out, not drained",
        started.elapsed()
    );
    assert!(summary.drained >= 2, "{summary:?}");
    assert_eq!(summary.aborted, 0, "{summary:?}");
    drop(idle_a);
    drop(idle_b);
}

#[test]
fn drain_deadline_zero_aborts_a_connection_mid_request() {
    use lalr_service::{Fault, FaultPlan, ServiceConfig, Trigger};
    // Every compile stalls 300 ms; with a zero drain deadline a stop()
    // mid-request must force-close rather than wait.
    let faults = FaultPlan::new(5)
        .rule("service.compile", Fault::Delay(300), Trigger::Rate(1.0))
        .build();
    let config = DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        drain_deadline: Duration::from_millis(0),
        faults: faults.clone(),
        service: ServiceConfig {
            faults,
            ..ServiceConfig::default()
        },
        ..DaemonConfig::default()
    };
    let daemon = Daemon::start(config).unwrap();
    let addr = daemon.addr().to_string();
    let busy = std::thread::spawn(move || {
        // The response may be lost to the forced close; only the timing
        // contract matters here.
        let _ = client::call(&addr, &compile_request(), None, Duration::from_secs(10));
    });
    // Wait until the request is in flight, then stop under it.
    std::thread::sleep(Duration::from_millis(100));
    daemon.stop();
    let summary = daemon.join();
    assert!(
        summary.aborted >= 1,
        "a mid-request connection must be aborted at deadline 0: {summary:?}"
    );
    busy.join().unwrap();
}

#[test]
fn deadline_of_zero_is_reported_as_deadline_exceeded() {
    let daemon = start_daemon();
    let reply = client::call(
        &daemon.addr().to_string(),
        &compile_request(),
        Some(Duration::from_millis(0)),
        Duration::from_secs(30),
    )
    .unwrap();
    assert!(!reply.is_ok(), "{}", reply.raw);
    assert_eq!(
        reply
            .value
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str),
        Some("deadline"),
        "{}",
        reply.raw
    );
    daemon.stop();
    daemon.join();
}
