//! Runtime sanity benchmark: tokens/second through the LR driver, dense
//! vs compressed tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lalr_automata::Lr0Automaton;
use lalr_core::LalrAnalysis;
use lalr_runtime::{CompressedSource, Lexer, Parser, Token};
use lalr_tables::{build_table, CompressedTable, TableOptions};

fn expr_tokens(n_terms: usize) -> (lalr_tables::ParseTable, Vec<Token>) {
    let g = lalr_corpus::by_name("expr").expect("exists").grammar();
    let lr0 = Lr0Automaton::build(&g);
    let la = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
    let table = build_table(&g, &lr0, &la, TableOptions::default());
    let lexer = Lexer::for_table(&table).number("NUM").build();
    let mut src = String::from("1");
    for i in 0..n_terms {
        let op = if i % 3 == 0 { "*" } else { "+" };
        src.push_str(&format!(" {op} ({i} + 2)"));
    }
    let tokens = lexer.tokenize(&src).expect("valid expression");
    (table, tokens)
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse_throughput");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [100usize, 1000] {
        let (table, tokens) = expr_tokens(n);
        let compressed = CompressedTable::from_dense(&table);
        group.throughput(Throughput::Elements(tokens.len() as u64));
        group.bench_with_input(BenchmarkId::new("dense", n), &tokens, |b, toks| {
            let parser = Parser::new(&table);
            b.iter(|| parser.parse(toks.clone()).expect("parses"))
        });
        let source = CompressedSource::new(&compressed, &table);
        group.bench_with_input(BenchmarkId::new("compressed", n), &tokens, |b, toks| {
            let parser = Parser::new(&source);
            b.iter(|| parser.parse(toks.clone()).expect("parses"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parse);
criterion_main!(benches);
