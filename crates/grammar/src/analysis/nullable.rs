//! Nullable-nonterminal computation.

use lalr_bitset::BitSet;

use crate::grammar::Grammar;
use crate::symbol::{NonTerminal, Symbol};

/// The set of nullable nonterminals (`A ⇒* ε`), as a bit set indexed by
/// nonterminal index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NullableSet {
    set: BitSet,
}

impl NullableSet {
    /// `true` when `nt ⇒* ε`.
    #[inline]
    pub fn contains(&self, nt: NonTerminal) -> bool {
        self.set.contains(nt.index())
    }

    /// `true` when the symbol derives ε (terminals never do).
    #[inline]
    pub fn symbol_nullable(&self, sym: Symbol) -> bool {
        match sym {
            Symbol::Terminal(_) => false,
            Symbol::NonTerminal(n) => self.contains(n),
        }
    }

    /// `true` when every symbol of the string derives ε (vacuously true for
    /// the empty string).
    pub fn string_nullable(&self, symbols: &[Symbol]) -> bool {
        symbols.iter().all(|&s| self.symbol_nullable(s))
    }

    /// Iterates over the nullable nonterminals.
    pub fn iter(&self) -> impl Iterator<Item = NonTerminal> + '_ {
        self.set.iter().map(NonTerminal::new)
    }

    /// Number of nullable nonterminals.
    pub fn count(&self) -> usize {
        self.set.count()
    }
}

/// Computes the nullable set by fixpoint iteration over the productions.
///
/// # Examples
///
/// ```
/// use lalr_grammar::{analysis::nullable, parse_grammar};
///
/// let g = parse_grammar("s : a b ; a : \"x\" | ; b : ;")?;
/// let n = nullable(&g);
/// assert!(n.contains(g.nonterminal_by_name("a").unwrap()));
/// assert!(n.contains(g.nonterminal_by_name("s").unwrap()));
/// # Ok::<(), lalr_grammar::GrammarError>(())
/// ```
pub fn nullable(grammar: &Grammar) -> NullableSet {
    let mut set = BitSet::new(grammar.nonterminal_count());
    let mut changed = true;
    while changed {
        changed = false;
        for p in grammar.productions() {
            if set.contains(p.lhs().index()) {
                continue;
            }
            let all_nullable = p.rhs().iter().all(|&s| match s {
                Symbol::Terminal(_) => false,
                Symbol::NonTerminal(n) => set.contains(n.index()),
            });
            if all_nullable {
                set.insert(p.lhs().index());
                changed = true;
            }
        }
    }
    NullableSet { set }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_grammar;

    #[test]
    fn no_epsilon_rules_means_nothing_nullable() {
        let g = parse_grammar("s : \"a\" s | \"a\" ;").unwrap();
        assert_eq!(nullable(&g).count(), 0);
    }

    #[test]
    fn direct_epsilon() {
        let g = parse_grammar("s : \"a\" | ;").unwrap();
        let n = nullable(&g);
        assert!(n.contains(g.start()));
        // The augmented start derives ε through s.
        assert!(n.contains(g.augmented_start()));
    }

    #[test]
    fn transitive_nullability() {
        let g = parse_grammar("s : a a ; a : b ; b : ;").unwrap();
        let n = nullable(&g);
        assert_eq!(n.count(), 4, "all of <start>, s, a, b");
    }

    #[test]
    fn blocked_by_terminal() {
        let g = parse_grammar("s : a \"x\" ; a : ;").unwrap();
        let n = nullable(&g);
        assert!(n.contains(g.nonterminal_by_name("a").unwrap()));
        assert!(!n.contains(g.start()));
    }

    #[test]
    fn string_nullable_queries() {
        let g = parse_grammar("s : a \"x\" ; a : ;").unwrap();
        let n = nullable(&g);
        let a: Symbol = g.nonterminal_by_name("a").unwrap().into();
        let x: Symbol = g.terminal_by_name("x").unwrap().into();
        assert!(n.string_nullable(&[]));
        assert!(n.string_nullable(&[a, a]));
        assert!(!n.string_nullable(&[a, x]));
        assert!(!n.symbol_nullable(x));
    }

    #[test]
    fn iter_lists_members() {
        let g = parse_grammar("s : \"q\" a ; a : ;").unwrap();
        let n = nullable(&g);
        let names: Vec<&str> = n.iter().map(|nt| g.nonterminal_name(nt)).collect();
        assert_eq!(names, vec!["a"]);
    }
}
