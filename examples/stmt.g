// A small imperative language for the `lalrgen` examples:
//
//   lalrgen profile  examples/stmt.g --trace-out trace.json
//   lalrgen analyze  examples/stmt.g
//   lalrgen classify examples/stmt.g
//
// Statements over a stratified expression grammar (boolean, relational,
// additive, multiplicative, unary) with assignments, calls, and blocks.
// Conflict-free LALR(1): the if-statement requires its else branch.

%start program

program   : stmt_list ;

stmt_list : stmt_list stmt
          | stmt ;

stmt      : "if" "(" expr ")" stmt "else" stmt
          | "while" "(" expr ")" stmt
          | "{" stmt_list "}"
          | "{" "}"
          | ID "=" expr ";"
          | "return" expr ";" ;

expr      : expr "||" conj
          | conj ;

conj      : conj "&&" negation
          | negation ;

negation  : "!" negation
          | relation ;

relation  : sum "<" sum
          | sum "==" sum
          | sum ;

sum       : sum "+" term
          | sum "-" term
          | term ;

term      : term "*" factor
          | term "/" factor
          | factor ;

factor    : "(" expr ")"
          | ID "(" args ")"
          | "-" factor
          | ID
          | NUM ;

args      : arg_list
          | ;

arg_list  : arg_list "," expr
          | expr ;
