//! Cross-crate property tests.

use lalr::corpus::synthetic::{random, RandomConfig};
use lalr::prelude::*;
use proptest::prelude::*;

/// Random well-formed inputs for the right-recursive list language
/// `s : "a" s | "b" ;` — strings a^n b.
fn list_input() -> impl Strategy<Value = String> {
    (0usize..64).prop_map(|n| {
        let mut s = "a ".repeat(n);
        s.push('b');
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn list_language_membership(input in list_input()) {
        let grammar = parse_grammar("s : \"a\" s | \"b\" ;").unwrap();
        let lr0 = Lr0Automaton::build(&grammar);
        let analysis = LalrAnalysis::compute(&grammar, &lr0);
        let table = build_table(&grammar, &lr0, analysis.lookaheads(), TableOptions::default());
        let lexer = Lexer::for_table(&table).build();
        let parser = Parser::new(&table);
        let tree = parser.parse(lexer.tokenize(&input).unwrap()).unwrap();
        prop_assert_eq!(tree.leaf_count(), input.split_whitespace().count());
    }

    #[test]
    fn balanced_parens_membership(depth in 0usize..40) {
        // p : "(" p ")" | ε  recognizes (^n )^n exactly.
        let grammar = parse_grammar("p : \"(\" p \")\" | ;").unwrap();
        let lr0 = Lr0Automaton::build(&grammar);
        let analysis = LalrAnalysis::compute(&grammar, &lr0);
        let table = build_table(&grammar, &lr0, analysis.lookaheads(), TableOptions::default());
        let lexer = Lexer::for_table(&table).build();
        let parser = Parser::new(&table);

        let good = format!("{}{}", "( ".repeat(depth), ") ".repeat(depth));
        prop_assert!(parser.parse(lexer.tokenize(&good).unwrap()).is_ok());

        let unbalanced = format!("{}{}", "( ".repeat(depth + 1), ") ".repeat(depth));
        prop_assert!(parser.parse(lexer.tokenize(&unbalanced).unwrap()).is_err());
    }

    #[test]
    fn random_grammar_pipeline_never_panics(seed in 0u64..500) {
        // Arbitrary grammars must flow through the whole pipeline without
        // panicking, whatever their class.
        let grammar = random(seed, RandomConfig::default());
        let lr0 = Lr0Automaton::build(&grammar);
        let analysis = LalrAnalysis::compute(&grammar, &lr0);
        let table = build_table(&grammar, &lr0, analysis.lookaheads(), TableOptions::default());
        prop_assert!(table.state_count() as usize == lr0.state_count());
        let compressed = CompressedTable::from_dense(&table);
        prop_assert_eq!(compressed.state_count(), lr0.state_count());
    }

    #[test]
    fn display_round_trip_preserves_structure(seed in 0u64..200) {
        let grammar = random(seed, RandomConfig::default());
        let text = grammar.to_string();
        let again = parse_grammar(&text).unwrap();
        prop_assert_eq!(grammar.production_count(), again.production_count());
        prop_assert_eq!(grammar.nonterminal_count(), again.nonterminal_count());
        // Re-display must be a fixpoint.
        prop_assert_eq!(text, again.to_string());
    }

    #[test]
    fn random_grammar_lookahead_methods_agree(seed in 0u64..120) {
        use lalr::core::propagation_lookaheads;
        let grammar = random(seed, RandomConfig { epsilon_prob: 0.3, ..RandomConfig::default() });
        let lr0 = Lr0Automaton::build(&grammar);
        let dp = LalrAnalysis::compute(&grammar, &lr0).into_lookaheads();
        let prop_la = propagation_lookaheads(&grammar, &lr0);
        prop_assert_eq!(dp, prop_la);
    }
}
